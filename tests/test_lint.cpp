// Tests of the ftrsn_lint static analyzer: one deliberately broken fixture
// per rule (asserting the exact rule id fires), clean networks with zero
// findings, the diagnostic emitters, and the runner configuration.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>

#include "graph/dataflow.hpp"
#include "io/rsn_text.hpp"
#include "itc02/itc02.hpp"
#include "lint/lint.hpp"
#include "lint/sarif.hpp"
#include "synth/synth.hpp"

namespace ftrsn {
namespace {

using lint::Diagnostic;
using lint::Severity;

bool fires(const std::vector<Diagnostic>& diags, const std::string& rule) {
  return std::any_of(diags.begin(), diags.end(),
                     [&](const Diagnostic& d) { return d.rule == rule; });
}

const Diagnostic& find(const std::vector<Diagnostic>& diags,
                       const std::string& rule) {
  for (const Diagnostic& d : diags)
    if (d.rule == rule) return d;
  throw std::logic_error("rule '" + rule + "' did not fire");
}

/// SI -> seg a -> seg b -> SO, both segments with shadows.
struct Net {
  Rsn rsn;
  NodeId si, a, b, so;
  Net() {
    si = rsn.add_primary_in("SI");
    a = rsn.add_segment("a", 2, si, /*has_shadow=*/true);
    b = rsn.add_segment("b", 2, a, /*has_shadow=*/true);
    so = rsn.add_primary_out("SO", b);
  }
};

// --- structure rules --------------------------------------------------------

TEST(Lint, NoPrimaryInAndOut) {
  Rsn rsn;
  rsn.add_segment("s", 1, kInvalidNode);
  const auto diags = lint::lint_rsn(rsn);
  EXPECT_TRUE(fires(diags, "no-primary-in"));
  EXPECT_TRUE(fires(diags, "no-primary-out"));
}

TEST(Lint, DanglingScanIn) {
  Net net;
  net.rsn.set_scan_in(net.b, kInvalidNode);
  const auto diags = lint::lint_rsn(net.rsn);
  EXPECT_EQ(find(diags, "dangling-scan-in").node, net.b);
  EXPECT_EQ(find(diags, "dangling-scan-in").severity, Severity::kError);
}

TEST(Lint, OutOfRangeScanIn) {
  Net net;
  net.rsn.set_scan_in(net.b, 999);
  EXPECT_TRUE(fires(lint::lint_rsn(net.rsn), "dangling-scan-in"));
}

TEST(Lint, DanglingMuxInput) {
  Net net;
  const NodeId m =
      net.rsn.add_mux("m", net.a, kInvalidNode, net.rsn.ctrl().enable_input());
  net.rsn.set_scan_in(net.so, m);
  EXPECT_EQ(find(lint::lint_rsn(net.rsn), "dangling-mux-input").node, m);
}

TEST(Lint, PrimaryOutDrives) {
  Net net;
  const NodeId tail = net.rsn.add_segment("tail", 1, net.so);
  const auto d = find(lint::lint_rsn(net.rsn), "primary-out-drives");
  EXPECT_EQ(d.node, tail);
  EXPECT_EQ(d.witness, std::vector<NodeId>{net.so});
}

TEST(Lint, MuxIdenticalInputs) {
  Net net;
  const NodeId m =
      net.rsn.add_mux("m", net.a, net.a, net.rsn.ctrl().enable_input());
  net.rsn.set_scan_in(net.so, m);
  EXPECT_EQ(find(lint::lint_rsn(net.rsn), "mux-identical-inputs").node, m);
}

TEST(Lint, ScanCycleWithWitness) {
  Net net;
  net.rsn.set_scan_in(net.a, net.b);  // a <- b while b <- a
  const auto d = find(lint::lint_rsn(net.rsn), "scan-cycle");
  EXPECT_EQ(d.severity, Severity::kError);
  // The witness walks the actual cycle: both segments, nothing else.
  EXPECT_EQ(d.witness.size(), 2u);
  EXPECT_TRUE(std::count(d.witness.begin(), d.witness.end(), net.a));
  EXPECT_TRUE(std::count(d.witness.begin(), d.witness.end(), net.b));
}

TEST(Lint, UnreachableAndDeadEnd) {
  Net net;
  // Island: x (dangling driver) -> y, never reaching SI or SO.
  const NodeId x = net.rsn.add_segment("x", 1, kInvalidNode);
  const NodeId y = net.rsn.add_segment("y", 1, x);
  const auto diags = lint::lint_rsn(net.rsn);
  EXPECT_TRUE(fires(diags, "unreachable-scan"));
  EXPECT_EQ(find(diags, "unreachable-scan").severity, Severity::kWarning);
  EXPECT_TRUE(fires(diags, "dead-end-scan"));
  const auto hit = [&](const std::string& rule, NodeId node) {
    return std::any_of(diags.begin(), diags.end(), [&](const Diagnostic& d) {
      return d.rule == rule && d.node == node;
    });
  };
  EXPECT_TRUE(hit("unreachable-scan", x));
  EXPECT_TRUE(hit("unreachable-scan", y));
  EXPECT_TRUE(hit("dead-end-scan", y));
}

TEST(Lint, UnusedPrimaryIn) {
  Net net;
  const NodeId si2 = net.rsn.add_primary_in("SI2");
  EXPECT_EQ(find(lint::lint_rsn(net.rsn), "unused-primary-in").node, si2);
}

// --- control rules ----------------------------------------------------------

TEST(Lint, InvalidCtrlRef) {
  Net net;
  net.rsn.set_select(net.a, 12345);
  const auto d = find(lint::lint_rsn(net.rsn), "invalid-ctrl-ref");
  EXPECT_EQ(d.node, net.a);
  EXPECT_EQ(d.ctrl, 12345);
}

TEST(Lint, ShadowRefNoShadow) {
  Net net;
  const NodeId plain = net.rsn.add_segment("plain", 1, net.b);
  net.rsn.set_scan_in(net.so, plain);
  net.rsn.set_select(plain, net.rsn.ctrl().shadow_bit(plain, 0));
  EXPECT_EQ(find(lint::lint_rsn(net.rsn), "shadow-ref-no-shadow").node, plain);
}

TEST(Lint, ShadowRefOutOfRange) {
  Net net;
  // Bit 7 of a 2-bit shadow register.
  net.rsn.set_select(net.b, net.rsn.ctrl().shadow_bit(net.a, 7));
  EXPECT_EQ(find(lint::lint_rsn(net.rsn), "shadow-ref-out-of-range").node,
            net.a);
  // Replica 2 while the segment has only one shadow copy.
  Net net2;
  net2.rsn.set_select(net2.b, net2.rsn.ctrl().shadow_bit(net2.a, 0, 2));
  EXPECT_TRUE(fires(lint::lint_rsn(net2.rsn), "shadow-ref-out-of-range"));
}

TEST(Lint, ConstFalseSelect) {
  Net net;
  CtrlPool& ctrl = net.rsn.ctrl();
  // EN & !EN is not folded by the pool's local rules; only exhaustive
  // evaluation over the cone proves it false.
  const CtrlRef en = ctrl.enable_input();
  net.rsn.set_select(net.a, ctrl.mk_and(en, ctrl.mk_not(en)));
  const auto d = find(lint::lint_rsn(net.rsn), "const-false-select");
  EXPECT_EQ(d.node, net.a);
  EXPECT_EQ(d.severity, Severity::kWarning);
  // The trivial constant is also caught.
  Net net2;
  net2.rsn.set_select(net2.a, kCtrlFalse);
  EXPECT_TRUE(fires(lint::lint_rsn(net2.rsn), "const-false-select"));
}

TEST(Lint, ConstFalseSelectLargeConeIsFlagged) {
  // 12 free atoms — beyond the historical 10-atom enumeration cutoff that
  // used to yield "cone too large; skip".  OR of per-atom contradictions
  // is provably false and must be flagged by every backend.
  for (const auto backend :
       {lint::ConeBackend::kAuto, lint::ConeBackend::kSat,
        lint::ConeBackend::kTristate}) {
    Net net;
    CtrlPool& ctrl = net.rsn.ctrl();
    CtrlRef sel = kCtrlFalse;
    for (std::uint16_t i = 0; i < 12; ++i) {
      const CtrlRef p = ctrl.port_select_input(i);
      sel = ctrl.mk_or(sel, ctrl.mk_and(p, ctrl.mk_not(p)));
    }
    net.rsn.set_select(net.a, sel);
    lint::LintOptions opts;
    opts.cone_backend = backend;
    const auto diags = lint::lint_rsn(net.rsn, opts);
    EXPECT_EQ(find(diags, "const-false-select").node, net.a);
  }
}

TEST(Lint, SatisfiableLargeConeIsNotFlagged) {
  // 13 atoms, every adjacent pair shared between two OR terms — a
  // reconvergent cone the old enumerator skipped and a naive tree argument
  // cannot decide.  It is satisfiable (all atoms 1), so no backend may
  // report const-false-select.
  for (const auto backend :
       {lint::ConeBackend::kAuto, lint::ConeBackend::kSat,
        lint::ConeBackend::kTristate}) {
    Net net;
    CtrlPool& ctrl = net.rsn.ctrl();
    CtrlRef sel = kCtrlTrue;
    for (std::uint16_t i = 0; i < 12; ++i)
      sel = ctrl.mk_and(sel, ctrl.mk_or(ctrl.port_select_input(i),
                                        ctrl.port_select_input(i + 1)));
    net.rsn.set_select(net.a, sel);
    lint::LintOptions opts;
    opts.cone_backend = backend;
    EXPECT_FALSE(fires(lint::lint_rsn(net.rsn, opts), "const-false-select"))
        << "backend " << static_cast<int>(backend);
  }
}

TEST(Lint, SelectSelfLoopDeadlock) {
  Net net;
  // Select of `a` requires a's own shadow bit, but reset seeds it to 0: the
  // segment can never be put on a scan path to flip its own bit.
  net.rsn.set_select(net.a, net.rsn.ctrl().shadow_bit(net.a, 0));
  EXPECT_EQ(find(lint::lint_rsn(net.rsn), "select-self-loop").node, net.a);
}

TEST(Lint, SelectSelfLoopSatisfiedByReset) {
  Net net;
  // Same dependency, but the reset value asserts the select: fine.
  net.rsn.set_select(net.a, net.rsn.ctrl().shadow_bit(net.a, 0));
  net.rsn.set_reset_shadow(net.a, 1);
  EXPECT_FALSE(fires(lint::lint_rsn(net.rsn), "select-self-loop"));
}

TEST(Lint, ConstMuxAddr) {
  Net net;
  const NodeId m = net.rsn.add_mux("m", net.a, net.b, kCtrlTrue);
  net.rsn.set_scan_in(net.so, m);
  const auto d = find(lint::lint_rsn(net.rsn), "const-mux-addr");
  EXPECT_EQ(d.node, m);
}

TEST(Lint, ConstTrueDisable) {
  Net net;
  CtrlPool& ctrl = net.rsn.ctrl();
  // EN | !EN is not folded by the pool; only cone analysis proves it true.
  const CtrlRef en = ctrl.enable_input();
  net.rsn.set_cap_dis(net.a, ctrl.mk_or(en, ctrl.mk_not(en)));
  const auto d = find(lint::lint_rsn(net.rsn), "const-true-disable");
  EXPECT_EQ(d.node, net.a);
  EXPECT_EQ(d.severity, Severity::kWarning);
  // The trivial constant fires too; an escapable disable does not.
  Net net2;
  net2.rsn.set_up_dis(net2.b, kCtrlTrue);
  EXPECT_TRUE(fires(lint::lint_rsn(net2.rsn), "const-true-disable"));
  Net net3;
  net3.rsn.set_cap_dis(net3.a, net3.rsn.ctrl().enable_input());
  EXPECT_FALSE(fires(lint::lint_rsn(net3.rsn), "const-true-disable"));
}

TEST(Lint, SelectTermUnsat) {
  Net net;
  CtrlPool& ctrl = net.rsn.ctrl();
  const CtrlRef en = ctrl.enable_input();
  net.rsn.add_select_term(net.a, net.b, ctrl.mk_and(en, ctrl.mk_not(en)));
  const auto d = find(lint::lint_rsn(net.rsn), "select-term-unsat");
  EXPECT_EQ(d.node, net.a);
  EXPECT_EQ(d.witness, std::vector<NodeId>{net.b});
  // A satisfiable term is fine.
  Net net2;
  net2.rsn.add_select_term(net2.a, net2.b, net2.rsn.ctrl().enable_input());
  EXPECT_FALSE(fires(lint::lint_rsn(net2.rsn), "select-term-unsat"));
}

// --- synthesis-metadata rules ----------------------------------------------

TEST(Lint, TmrVoterShape) {
  Net net;
  CtrlPool& ctrl = net.rsn.ctrl();
  net.rsn.set_shadow_replicas(net.a, 3);
  // Voter with a duplicated replica input.
  const CtrlRef r0 = ctrl.shadow_bit(net.a, 0, 0);
  const CtrlRef r1 = ctrl.shadow_bit(net.a, 0, 1);
  net.rsn.set_select(net.a, ctrl.mk_maj3(r0, r0, r1));
  EXPECT_TRUE(fires(lint::lint_rsn(net.rsn), "tmr-voter-shape"));
  // Voter mixing two different registers.
  Net net2;
  CtrlPool& c2 = net2.rsn.ctrl();
  net2.rsn.set_shadow_replicas(net2.a, 3);
  net2.rsn.set_shadow_replicas(net2.b, 3);
  net2.rsn.set_select(net2.a, c2.mk_maj3(c2.shadow_bit(net2.a, 0, 0),
                                         c2.shadow_bit(net2.a, 0, 1),
                                         c2.shadow_bit(net2.b, 0, 2)));
  EXPECT_TRUE(fires(lint::lint_rsn(net2.rsn), "tmr-voter-shape"));
}

TEST(Lint, TmrVoterShared) {
  Net net;
  CtrlPool& ctrl = net.rsn.ctrl();
  net.rsn.set_shadow_replicas(net.a, 3);
  const CtrlRef voter =
      ctrl.mk_maj3(ctrl.shadow_bit(net.a, 0, 0), ctrl.shadow_bit(net.a, 0, 1),
                   ctrl.shadow_bit(net.a, 0, 2));
  const NodeId m1 = net.rsn.add_mux("m1", net.si, net.a, voter);
  const NodeId m2 = net.rsn.add_mux("m2", net.a, m1, voter);
  net.rsn.set_scan_in(net.so, m2);
  const auto d = find(lint::lint_rsn(net.rsn), "tmr-voter-shared");
  EXPECT_EQ(d.witness, (std::vector<NodeId>{m1, m2}));
}

TEST(Lint, SelectTermStale) {
  Net net;
  // Term claims successor direction b -> a, but the edge runs a -> b.
  net.rsn.add_select_term(net.b, net.a, kCtrlTrue);
  EXPECT_EQ(find(lint::lint_rsn(net.rsn), "select-term-stale").node, net.b);
}

TEST(Lint, SelectTermCoverage) {
  Net net;
  // a fans out to b and a mux, but only the b direction has a term.
  const NodeId m = net.rsn.add_mux("m", net.a, net.b,
                                   net.rsn.ctrl().enable_input());
  net.rsn.set_scan_in(net.so, m);
  net.rsn.add_select_term(net.a, net.b, kCtrlTrue);
  const auto d = find(lint::lint_rsn(net.rsn), "select-term-coverage");
  EXPECT_EQ(d.node, net.a);
  EXPECT_EQ(d.witness, std::vector<NodeId>{m});
}

// --- fault-tolerance profile (opt-in) ---------------------------------------

TEST(Lint, FtRulesAreOptIn) {
  const Rsn chain = make_chain_rsn(3, 4);
  EXPECT_TRUE(lint::lint_rsn(chain).empty());
  lint::LintOptions ft;
  ft.ft_rules = true;
  const auto diags = lint::lint_rsn(chain, ft);
  EXPECT_TRUE(fires(diags, "ft-single-scan-port"));
  EXPECT_TRUE(fires(diags, "ft-spof"));  // every chain segment is a SPOF
  EXPECT_FALSE(lint::has_errors(diags));  // FT findings are warnings
}

TEST(Lint, FtUntriplicatedAddress) {
  Net net;
  const NodeId m = net.rsn.add_mux("m", net.a, net.b,
                                   net.rsn.ctrl().shadow_bit(net.a, 0));
  net.rsn.set_scan_in(net.so, m);
  lint::LintOptions ft;
  ft.ft_rules = true;
  EXPECT_EQ(find(lint::lint_rsn(net.rsn, ft), "ft-untriplicated-address").node,
            m);
  EXPECT_FALSE(fires(lint::lint_rsn(net.rsn), "ft-untriplicated-address"));
}

TEST(Lint, FtProfileCleanOnSynthesizedNetwork) {
  const SynthResult r = synthesize_fault_tolerant(make_example_rsn());
  lint::LintOptions ft;
  ft.ft_rules = true;
  const auto diags = lint::lint_rsn(r.rsn, ft);
  EXPECT_FALSE(fires(diags, "ft-single-scan-port"));
  EXPECT_FALSE(fires(diags, "ft-untriplicated-address"));
  EXPECT_FALSE(fires(diags, "ft-spof"));
  EXPECT_FALSE(lint::has_errors(diags));
}

// --- dataflow rules ---------------------------------------------------------

TEST(Lint, DataflowRules) {
  // 0 -> 1 -> 0 cycle, no roots or sinks, vertex 2 unreachable.
  const auto g = DataflowGraph::from_edges(3, {{0, 1}, {1, 0}}, {}, {});
  const auto diags = lint::lint_dataflow(g);
  EXPECT_TRUE(fires(diags, "df-no-root"));
  EXPECT_TRUE(fires(diags, "df-no-sink"));
  EXPECT_TRUE(fires(diags, "df-cycle"));
  EXPECT_TRUE(fires(diags, "df-unreachable"));
  EXPECT_FALSE(find(diags, "df-cycle").witness.empty());
}

TEST(Lint, DataflowRootSinkDegrees) {
  const auto g = DataflowGraph::from_edges(3, {{0, 1}, {1, 2}, {2, 0}},
                                           {0}, {2});
  const auto diags = lint::lint_dataflow(g);
  EXPECT_TRUE(fires(diags, "df-root-in-edges"));
  EXPECT_TRUE(fires(diags, "df-sink-out-edges"));
}

TEST(Lint, DataflowCleanGraph) {
  const auto g =
      DataflowGraph::from_edges(3, {{0, 1}, {1, 2}}, {0}, {2});
  EXPECT_TRUE(lint::lint_dataflow(g).empty());
}

TEST(Lint, FromEdgesRejectsOutOfRangeIds) {
  EXPECT_THROW(DataflowGraph::from_edges(3, {{0, 7}}, {0}, {2}),
               std::invalid_argument);
  EXPECT_THROW(DataflowGraph::from_edges(3, {{0, 1}}, {5}, {2}),
               std::invalid_argument);
  EXPECT_THROW(DataflowGraph::from_edges(3, {{0, 1}}, {0}, {9}),
               std::invalid_argument);
  // The message aggregates all offenders, not just the first.
  try {
    DataflowGraph::from_edges(2, {{0, 5}, {6, 1}}, {0}, {1});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("edge #0"), std::string::npos);
    EXPECT_NE(what.find("edge #1"), std::string::npos);
  }
}

// --- augmentation postconditions --------------------------------------------

TEST(Lint, AugmentEdgeRangeAndCycle) {
  const auto g =
      DataflowGraph::from_edges(4, {{0, 1}, {1, 2}, {2, 3}}, {0}, {3});
  const auto diags =
      lint::lint_augmentation(g, {{2, 99}, {2, 1}});
  EXPECT_TRUE(fires(diags, "aug-edge-range"));
  EXPECT_TRUE(fires(diags, "aug-cycle"));
  EXPECT_TRUE(fires(diags, "aug-level-backward"));
  EXPECT_TRUE(lint::has_errors(diags));
}

TEST(Lint, AugmentLowDegrees) {
  const auto g =
      DataflowGraph::from_edges(4, {{0, 1}, {1, 2}, {2, 3}}, {0}, {3});
  const auto none = lint::lint_augmentation(g, {});
  EXPECT_TRUE(fires(none, "aug-low-in-degree"));   // vertex 2: indeg 1
  EXPECT_TRUE(fires(none, "aug-low-out-degree"));  // vertex 1: outdeg 1
  const auto fixed = lint::lint_augmentation(g, {{0, 2}, {1, 3}});
  EXPECT_FALSE(fires(fixed, "aug-low-in-degree"));
  EXPECT_FALSE(fires(fixed, "aug-low-out-degree"));
  EXPECT_TRUE(fixed.empty());
}

TEST(Lint, SynthesisResultCarriesLintReport) {
  const SynthResult r = synthesize_fault_tolerant(make_example_rsn());
  EXPECT_FALSE(lint::has_errors(r.lint));
}

// --- clean networks: zero findings ------------------------------------------

TEST(Lint, CleanNetworksHaveZeroFindings) {
  EXPECT_TRUE(lint::lint_rsn(make_example_rsn()).empty());
  EXPECT_TRUE(lint::lint_rsn(make_chain_rsn(5, 8)).empty());
}

TEST(Lint, CleanSibNetworkHasZeroFindings) {
  const auto soc = itc02::find_soc("g1023");
  ASSERT_TRUE(soc.has_value());
  EXPECT_TRUE(lint::lint_rsn(itc02::generate_sib_rsn(*soc)).empty());
}

// --- validate() aggregation -------------------------------------------------

TEST(Lint, ValidateAggregatesAllViolations) {
  Net net;
  net.rsn.set_scan_in(net.b, kInvalidNode);
  const NodeId m =
      net.rsn.add_mux("m", net.a, net.a, net.rsn.ctrl().enable_input());
  net.rsn.set_scan_in(net.so, m);
  const auto diags = net.rsn.validate();
  EXPECT_TRUE(fires(diags, "dangling-scan-in"));
  EXPECT_TRUE(fires(diags, "mux-identical-inputs"));
  // validate_or_die reports every error in one exception.
  try {
    net.rsn.validate_or_die();
    FAIL() << "expected std::logic_error";
  } catch (const std::logic_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("dangling-scan-in"), std::string::npos);
    EXPECT_NE(what.find("mux-identical-inputs"), std::string::npos);
  }
}

// --- emitters ---------------------------------------------------------------

TEST(Lint, TextAndJsonEmitters) {
  Net net;
  net.rsn.set_scan_in(net.a, net.b);  // cycle
  const auto diags = lint::lint_rsn(net.rsn);
  const auto names = net.rsn.node_names();
  const std::string text = lint::to_text(diags, names);
  EXPECT_NE(text.find("error[scan-cycle]"), std::string::npos);
  EXPECT_NE(text.find(" -> "), std::string::npos);  // witness rendering
  const std::string json = lint::to_json(diags, names);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"rule\":\"scan-cycle\""), std::string::npos);
  EXPECT_NE(json.find("\"witness\":["), std::string::npos);
  EXPECT_NE(json.find("\"errors\":"), std::string::npos);
}

TEST(Lint, SarifEmitterGoldenFile) {
  // Deterministic fixture: a scan cycle (error with witness) plus a
  // const-false select (warning with ctrl ref), rendered via --sarif and
  // compared byte-for-byte against the checked-in golden log.
  Net net;
  net.rsn.set_scan_in(net.a, net.b);  // cycle
  net.rsn.set_select(net.b, kCtrlFalse);
  const auto diags = lint::lint_rsn(net.rsn);
  ASSERT_TRUE(fires(diags, "scan-cycle"));
  const std::string sarif =
      lint::to_sarif(
          {{"tests/data/broken.rsn", diags, net.rsn.node_names(), {}}});

  // Structural sanity independent of the golden file.
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"name\": \"rsn-lint\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\": \"scan-cycle\""), std::string::npos);
  EXPECT_EQ(sarif.back(), '\n');

  const std::string path =
      std::string(FTRSN_TEST_DATA_DIR) + "/lint_golden.sarif";
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr) << "missing golden file " << path;
  std::string golden;
  char buf[4096];
  for (std::size_t n; (n = std::fread(buf, 1, sizeof buf, f)) > 0;)
    golden.append(buf, n);
  std::fclose(f);
  EXPECT_EQ(sarif, golden);
}

TEST(Lint, SarifEmitterEmptyAndMultiArtifact) {
  // No findings: still a valid log with an empty results array.
  const std::string empty = lint::to_sarif({});
  EXPECT_NE(empty.find("\"results\": []"), std::string::npos);
  // Two artifacts: results carry their own artifact index.
  Net net;
  net.rsn.set_scan_in(net.b, kInvalidNode);
  const auto diags = lint::lint_rsn(net.rsn);
  const std::string two = lint::to_sarif(
      {{"a.rsn", {}, {}, {}}, {"b.rsn", diags, net.rsn.node_names(), {}}});
  EXPECT_NE(two.find("\"uri\": \"a.rsn\""), std::string::npos);
  EXPECT_NE(two.find("\"uri\": \"b.rsn\", \"index\": 1"), std::string::npos);
}

TEST(Lint, JsonEscapesSpecials) {
  const std::vector<Diagnostic> diags = {
      {"r", Severity::kInfo, kInvalidNode, kCtrlInvalid,
       "quote \" backslash \\ newline \n", "", {}}};
  const std::string json = lint::to_json(diags);
  EXPECT_NE(json.find("quote \\\" backslash \\\\ newline \\n"),
            std::string::npos);
  EXPECT_NE(json.find("\"infos\":1"), std::string::npos);
}

// --- runner configuration ---------------------------------------------------

TEST(Lint, RunnerDisableAndSeverityOverride) {
  Net net;
  net.rsn.set_scan_in(net.a, net.b);  // cycle
  lint::LintOptions opts;
  opts.enabled["scan-cycle"] = false;
  EXPECT_FALSE(fires(lint::lint_rsn(net.rsn, opts), "scan-cycle"));

  Net net2;
  net2.rsn.set_select(net2.a, kCtrlFalse);
  lint::LintOptions promote;
  promote.severity["const-false-select"] = Severity::kError;
  const auto diags = lint::lint_rsn(net2.rsn, promote);
  EXPECT_EQ(find(diags, "const-false-select").severity, Severity::kError);
  EXPECT_TRUE(lint::has_errors(diags));
}

TEST(Lint, RuleCatalogIsWellFormed) {
  const auto& rules = lint::LintRunner::rules();
  EXPECT_GE(rules.size(), 30u);
  for (std::size_t i = 0; i < rules.size(); ++i) {
    EXPECT_FALSE(rules[i].id.empty());
    EXPECT_FALSE(rules[i].summary.empty());
    EXPECT_FALSE(rules[i].paper_ref.empty());
    for (std::size_t j = i + 1; j < rules.size(); ++j)
      EXPECT_NE(rules[i].id, rules[j].id) << "duplicate rule id";
  }
}

TEST(Lint, DeterministicOrdering) {
  Net net;
  net.rsn.set_scan_in(net.b, kInvalidNode);
  net.rsn.add_primary_in("SI2");
  const auto a = lint::lint_rsn(net.rsn);
  const auto b = lint::lint_rsn(net.rsn);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].rule, b[i].rule);
    EXPECT_EQ(a[i].node, b[i].node);
  }
}

// --- parse without validation (the rsn-lint CLI path) -----------------------

TEST(Lint, ParseWithoutValidationLoadsBrokenNetwork) {
  // b's scan-in references a nonexistent node only resolvable as a cycle:
  // a <- b and b <- a.  With validation the parse would throw; without it
  // the lint rules get to see the broken structure.
  Rsn net = make_example_rsn();
  const std::string text = write_rsn_text(net);
  EXPECT_NO_THROW(parse_rsn_text(text));  // round-trip stays valid
  Rsn broken = parse_rsn_text(text, /*validate=*/false);
  broken.set_scan_in(broken.primary_out(), kInvalidNode);
  EXPECT_TRUE(fires(lint::lint_rsn(broken), "dangling-scan-in"));
}

}  // namespace
}  // namespace ftrsn
