#include <gtest/gtest.h>

#include "graph/dataflow.hpp"
#include "itc02/itc02.hpp"

namespace ftrsn {
namespace {

using itc02::Soc;
using itc02::TableRow;

TEST(Itc02, ThirteenSocs) {
  EXPECT_EQ(itc02::socs().size(), 13u);
  EXPECT_EQ(itc02::table1().size(), 13u);
}

TEST(Itc02, FindSoc) {
  EXPECT_TRUE(itc02::find_soc("d695").has_value());
  EXPECT_EQ(itc02::find_soc("d695")->name, "d695");
  EXPECT_FALSE(itc02::find_soc("nope").has_value());
}

/// The generated SIB-based RSNs must match Table I of the paper in every
/// characteristic column (this is the experimental substrate of the paper).
class Itc02TableParam : public ::testing::TestWithParam<int> {};

TEST_P(Itc02TableParam, CharacteristicsMatchTable1) {
  const int i = GetParam();
  const Soc& soc = itc02::socs()[static_cast<std::size_t>(i)];
  const TableRow& row = itc02::table1()[static_cast<std::size_t>(i)];
  ASSERT_EQ(soc.name, row.soc);

  const itc02::SocSummary sum = itc02::summarize(soc);
  EXPECT_EQ(sum.modules, row.modules) << soc.name;
  EXPECT_EQ(sum.levels, row.levels) << soc.name;
  EXPECT_EQ(sum.sibs, row.mux) << soc.name;
  EXPECT_EQ(sum.sibs + sum.chains, row.segments) << soc.name;
  EXPECT_EQ(sum.bits, row.bits) << soc.name;

  const Rsn rsn = itc02::generate_sib_rsn(soc);
  const RsnStats st = rsn.stats();
  EXPECT_EQ(st.muxes, row.mux) << soc.name;
  EXPECT_EQ(st.segments, row.segments) << soc.name;
  EXPECT_EQ(st.bits, row.bits) << soc.name;
  EXPECT_EQ(st.levels, row.levels) << soc.name;
}

INSTANTIATE_TEST_SUITE_P(AllSocs, Itc02TableParam, ::testing::Range(0, 13),
                         [](const auto& info) {
                           return std::string(
                               itc02::table1()[static_cast<std::size_t>(
                                                   info.param)]
                                   .soc);
                         });

TEST(Itc02, GeneratedRsnIsValidDag) {
  const Rsn rsn = itc02::generate_sib_rsn(itc02::socs()[0]);
  EXPECT_NO_THROW(rsn.validate_or_die());
  const DataflowGraph g = DataflowGraph::from_rsn(rsn);
  EXPECT_FALSE(g.has_cycle());
  EXPECT_EQ(g.roots().size(), 1u);
  EXPECT_EQ(g.sinks().size(), 1u);
}

TEST(Itc02, SibRegistersAreOneBitWithShadow) {
  const Rsn rsn = itc02::generate_sib_rsn(itc02::socs()[0]);
  int sib_count = 0;
  for (NodeId id = 0; id < rsn.num_nodes(); ++id) {
    const RsnNode& n = rsn.node(id);
    if (n.is_segment() && n.role == SegRole::kSibRegister) {
      ++sib_count;
      EXPECT_EQ(n.length, 1);
      EXPECT_TRUE(n.has_shadow);
    }
  }
  EXPECT_EQ(sib_count, itc02::table1()[0].mux);
}

TEST(Itc02, ResetConfigurationBypassesEverything) {
  // All SIBs reset to 0: active path contains only top-level SIB registers.
  const Soc& soc = itc02::socs()[0];  // u226
  const Rsn rsn = itc02::generate_sib_rsn(soc);
  int top_modules = 0;
  for (const auto& m : soc.modules) top_modules += (m.parent < 0) ? 1 : 0;
  // Reset shadows are zero; verify the stored reset values.
  for (NodeId id = 0; id < rsn.num_nodes(); ++id)
    if (rsn.node(id).is_segment())
      EXPECT_EQ(rsn.node(id).reset_shadow, 0u);
  EXPECT_GT(top_modules, 0);
}

TEST(Itc02, DominantChainMatchesWorstCaseBits) {
  for (std::size_t i = 0; i < itc02::socs().size(); ++i) {
    const Soc& soc = itc02::socs()[i];
    const TableRow& row = itc02::table1()[i];
    int max_chain = 0;
    for (const auto& m : soc.modules)
      for (int c : m.chain_bits) max_chain = std::max(max_chain, c);
    const double expected =
        (1.0 - row.ft_bits_worst) * static_cast<double>(row.bits);
    EXPECT_NEAR(max_chain, expected, 1.0) << soc.name;
  }
}

TEST(Itc02, HierarchyLevelsAssigned) {
  const Rsn rsn = itc02::generate_sib_rsn(*itc02::find_soc("x1331"));
  int max_level = 0;
  for (NodeId id = 0; id < rsn.num_nodes(); ++id)
    max_level = std::max(max_level, rsn.node(id).hier_level);
  EXPECT_EQ(max_level, 4);
}

}  // namespace
}  // namespace ftrsn
