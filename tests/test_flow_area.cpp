#include <gtest/gtest.h>

#include "area/area.hpp"
#include "core/flow.hpp"
#include "itc02/itc02.hpp"

namespace ftrsn {
namespace {

TEST(Area, ExampleCounts) {
  const Rsn rsn = make_example_rsn();
  const AreaReport rep = estimate_area(rsn);
  EXPECT_EQ(rep.shift_ffs, 11);
  EXPECT_EQ(rep.scan_muxes, 2);
  EXPECT_EQ(rep.shadow_latches, 5);  // A (2 bits) + B (3 bits)
  EXPECT_GT(rep.nets, 0);
  EXPECT_GT(rep.area, 0.0);
}

TEST(Area, ChainAreaDominatedByFlipFlops) {
  const TechLibrary lib;
  const Rsn rsn = make_chain_rsn(4, 100);
  const AreaReport rep = estimate_area(rsn, lib);
  EXPECT_EQ(rep.shift_ffs, 400);
  EXPECT_NEAR(rep.area, 400 * lib.dff, 1.0);
}

TEST(Area, OverheadRatiosAboveOne) {
  const Rsn original = itc02::generate_sib_rsn(*itc02::find_soc("u226"));
  const Rsn ft = synthesize_fault_tolerant(original).rsn;
  const OverheadRatios r = compute_overhead(original, ft);
  EXPECT_GT(r.mux, 1.0);
  EXPECT_GT(r.bits, 1.0);
  EXPECT_GT(r.nets, 1.0);
  EXPECT_GT(r.area, 1.0);
  // Paper shape: area overhead stays moderate even though muxes triple.
  EXPECT_LT(r.area, 2.0);
  EXPECT_GT(r.mux, 2.0);
}

TEST(Area, AreaRatioShrinksWithBits) {
  // The area ratio must approach 1.0 as scan bits dominate (paper: q12710
  // with 26k bits has ratio 1.02, u226 with 1.5k bits has 1.56).
  const Rsn small = itc02::generate_sib_rsn(*itc02::find_soc("u226"));
  const Rsn big = itc02::generate_sib_rsn(*itc02::find_soc("q12710"));
  const double small_ratio =
      compute_overhead(small, synthesize_fault_tolerant(small).rsn).area;
  const double big_ratio =
      compute_overhead(big, synthesize_fault_tolerant(big).rsn).area;
  EXPECT_LT(big_ratio, small_ratio);
  EXPECT_LT(big_ratio, 1.1);
}

TEST(Flow, ExampleEndToEnd) {
  const FlowResult r = run_flow(make_example_rsn());
  ASSERT_TRUE(r.original_metric.has_value());
  ASSERT_TRUE(r.hardened_metric.has_value());
  EXPECT_EQ(r.original_metric->seg_worst, 0.0);
  EXPECT_GT(r.hardened_metric->seg_worst, r.original_metric->seg_worst);
  EXPECT_GT(r.hardened_metric->seg_avg, r.original_metric->seg_avg);
  EXPECT_NO_THROW(r.hardened.validate_or_die());
}

TEST(Flow, SkipsMetricsWhenDisabled) {
  FlowOptions opt;
  opt.evaluate_original = false;
  opt.evaluate_hardened = false;
  const FlowResult r = run_flow(make_example_rsn(), opt);
  EXPECT_FALSE(r.original_metric.has_value());
  EXPECT_FALSE(r.hardened_metric.has_value());
  EXPECT_GT(r.overhead.mux, 1.0);
}

TEST(Flow, SocFlowByName) {
  FlowOptions opt;
  opt.evaluate_original = false;
  opt.evaluate_hardened = false;
  const FlowResult r = run_soc_flow("x1331", opt);
  EXPECT_EQ(r.original_stats.segments, 56);
  EXPECT_THROW(run_soc_flow("nope", opt), std::logic_error);
}

/// Paper Table I headline reproduction on the two fastest SoCs: worst-case
/// of the original is 0.00; the fault-tolerant RSN keeps nearly all
/// segments accessible, with the worst-case bit loss set by the dominant
/// chain.
class FlowPaperParam : public ::testing::TestWithParam<const char*> {};

TEST_P(FlowPaperParam, HeadlineClaims) {
  const std::string soc = GetParam();
  const FlowResult r = run_soc_flow(soc);
  const auto& row = [&]() -> const itc02::TableRow& {
    for (const auto& t : itc02::table1())
      if (t.soc == soc) return t;
    throw std::logic_error("row");
  }();
  EXPECT_EQ(r.original_metric->seg_worst, 0.0);
  EXPECT_EQ(r.original_metric->bit_worst, 0.0);
  EXPECT_GT(r.original_metric->seg_avg, 0.5);
  EXPECT_LT(r.original_metric->seg_avg, 1.0);
  EXPECT_GT(r.hardened_metric->seg_worst, 0.9);
  EXPECT_GT(r.hardened_metric->seg_avg, 0.99);
  EXPECT_NEAR(r.hardened_metric->bit_worst, row.ft_bits_worst, 0.05);
  EXPECT_GT(r.overhead.mux, 2.0);
  EXPECT_LT(r.overhead.area, row.r_area + 0.25);
}

INSTANTIATE_TEST_SUITE_P(Socs, FlowPaperParam,
                         ::testing::Values("u226", "x1331"),
                         [](const auto& info) { return std::string(info.param); });

}  // namespace
}  // namespace ftrsn
