// Serve suite (ctest -L serve): the content-addressed result cache, the
// single-flight coalescing, the JSONL service and the socket transport.
//
// The determinism-critical properties are asserted on hardware-independent
// counters (CacheStats), never on wall clock:
//   * hit / miss / LRU-eviction bookkeeping of ResultCache;
//   * counter-asserted coalescing (N concurrent identical requests = 1
//     computation, stats.coalesced == N-1) using the debug_sleep_ms test
//     hook to hold the leader in flight;
//   * a cancelled or failed flight never poisons the cache (the next
//     acquire of the key leads a fresh computation that succeeds);
//   * cache hits are byte-identical to a cold run — asserted on three
//     ITC'02 SoCs against a *fresh* service instance, so a hit can never
//     drift from what an uncached daemon would answer.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "io/rsn_text.hpp"
#include "itc02/itc02.hpp"
#include "obs/obs.hpp"
#include "serve/cache.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "util/common.hpp"
#include "util/json.hpp"
#include "util/sha256.hpp"

namespace ftrsn::serve {
namespace {

std::string soc_rsn_text(const char* name) {
  const auto soc = itc02::find_soc(name);
  EXPECT_TRUE(soc.has_value()) << name;
  return write_rsn_text(itc02::generate_sib_rsn(*soc));
}

/// Builds a JSONL request line.  `extra` is spliced into the object
/// verbatim (options, timeout_ms, ...).
std::string request_line(const std::string& id, const std::string& op,
                         const std::string& rsn_text,
                         const std::string& extra = {}) {
  std::string line = "{\"id\":\"" + id + "\",\"op\":\"" + op + "\"";
  if (!rsn_text.empty())
    line += ",\"rsn\":\"" + obs::detail::json_escape(rsn_text) + "\"";
  if (!extra.empty()) line += "," + extra;
  return line + "}";
}

json::Value response(ServeService& service, const std::string& line) {
  std::string error;
  const auto doc = json::parse(service.handle_line(line), &error);
  EXPECT_TRUE(doc.has_value()) << error;
  EXPECT_TRUE(doc->is_object());
  return *doc;
}

bool resp_ok(const json::Value& r) {
  const json::Value* ok = r.find("ok");
  return ok && ok->is_bool() && ok->boolean;
}

std::string resp_str(const json::Value& r, const char* key) {
  const json::Value* v = r.find(key);
  return v && v->is_string() ? v->text : std::string();
}

bool resp_flag(const json::Value& r, const char* key) {
  const json::Value* v = r.find(key);
  return v && v->is_bool() && v->boolean;
}

void spin_until(const std::function<bool()>& done) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (!done()) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline) << "spin timeout";
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

// --- ResultCache unit tests --------------------------------------------------

TEST(ServeCache, HitMissAndLruEviction) {
  ResultCache::Options opt;
  opt.max_bytes = 3 * (2 + 4 + 128);  // room for exactly three k?/blob pairs
  opt.max_entries = 100;
  ResultCache cache(opt);

  const auto insert = [&](const std::string& key, const std::string& blob) {
    const auto lead = cache.acquire(key);
    ASSERT_EQ(lead.kind, ResultCache::Lookup::Kind::kLead);
    cache.complete(key, lead.flight, blob);
  };
  insert("k1", "aaaa");
  insert("k2", "bbbb");
  insert("k3", "cccc");
  EXPECT_EQ(cache.stats().entries, 3u);

  // Refresh k1, then insert k4: the LRU victim must be k2, deterministically.
  const auto hit = cache.acquire("k1");
  EXPECT_EQ(hit.kind, ResultCache::Lookup::Kind::kHit);
  EXPECT_EQ(hit.value, "aaaa");
  insert("k4", "dddd");

  EXPECT_TRUE(cache.peek("k1").has_value());
  EXPECT_FALSE(cache.peek("k2").has_value());
  EXPECT_TRUE(cache.peek("k3").has_value());
  EXPECT_TRUE(cache.peek("k4").has_value());

  const CacheStats s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 4u);
  EXPECT_EQ(s.insertions, 4u);
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.entries, 3u);
  EXPECT_LE(s.bytes, opt.max_bytes);
}

TEST(ServeCache, EntryCapEvictsAndOversizedBlobIsUncacheable) {
  ResultCache::Options opt;
  opt.max_bytes = 1024;
  opt.max_entries = 2;
  ResultCache cache(opt);
  for (const char* key : {"a", "b", "c"}) {
    const auto lead = cache.acquire(key);
    ASSERT_EQ(lead.kind, ResultCache::Lookup::Kind::kLead);
    cache.complete(key, lead.flight, "x");
  }
  EXPECT_EQ(cache.stats().entries, 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_FALSE(cache.peek("a").has_value());  // oldest evicted

  // A blob bigger than the whole byte budget is served but never inserted.
  const auto lead = cache.acquire("big");
  ASSERT_EQ(lead.kind, ResultCache::Lookup::Kind::kLead);
  cache.complete("big", lead.flight, std::string(4096, 'z'));
  EXPECT_FALSE(cache.peek("big").has_value());
  EXPECT_EQ(cache.stats().uncacheable, 1u);
  EXPECT_EQ(cache.stats().entries, 2u);
}

TEST(ServeCache, SingleFlightCoalescesAndFailureDoesNotPoison) {
  ResultCache cache;
  const auto lead = cache.acquire("k");
  ASSERT_EQ(lead.kind, ResultCache::Lookup::Kind::kLead);

  std::atomic<int> shared{0};
  std::vector<std::thread> waiters;
  for (int i = 0; i < 3; ++i) {
    waiters.emplace_back([&] {
      const auto got = cache.acquire("k");
      EXPECT_EQ(got.kind, ResultCache::Lookup::Kind::kShared);
      EXPECT_EQ(got.value, "blob");
      shared.fetch_add(1);
    });
  }
  // Counter-asserted rendezvous: complete only after all three have
  // coalesced onto the flight, so the waiter count is exact by
  // construction, not by sleep.
  spin_until([&] { return cache.stats().coalesced == 3; });
  cache.complete("k", lead.flight, "blob");
  for (auto& t : waiters) t.join();
  EXPECT_EQ(shared.load(), 3);
  EXPECT_EQ(cache.stats().misses, 1u);

  // Failure path: waiters get the error, the cache stays clean, and the
  // next acquire leads a *fresh* computation that can succeed.
  const auto lead2 = cache.acquire("f");
  ASSERT_EQ(lead2.kind, ResultCache::Lookup::Kind::kLead);
  std::thread waiter([&] {
    const auto got = cache.acquire("f");
    EXPECT_EQ(got.kind, ResultCache::Lookup::Kind::kFailed);
    EXPECT_EQ(got.value, "boom");
  });
  spin_until([&] { return cache.stats().coalesced == 4; });
  cache.fail("f", lead2.flight, "boom");
  waiter.join();
  EXPECT_FALSE(cache.peek("f").has_value());
  const auto lead3 = cache.acquire("f");
  EXPECT_EQ(lead3.kind, ResultCache::Lookup::Kind::kLead);
  cache.complete("f", lead3.flight, "ok");
  EXPECT_EQ(cache.peek("f").value_or(""), "ok");
}

// --- content hash ------------------------------------------------------------

TEST(ServeKey, ContentHashIsAPureFunctionOfTheSourceText) {
  const Rsn a = make_example_rsn();
  const std::string h = a.content_hash();
  EXPECT_EQ(h.size(), 64u);
  // Definition check: domain-tagged SHA-256 of the text serialization.
  EXPECT_EQ(h, sha256_hex("ftrsn-rsn-v1\n" + write_rsn_text(a)));
  // The cache-key property: parsing is deterministic, so byte-identical
  // uploads hash identically no matter how often they are parsed.
  const std::string text = write_rsn_text(a);
  EXPECT_EQ(parse_rsn_text(text).content_hash(),
            parse_rsn_text(text).content_hash());
  // A structurally different network must hash differently.
  EXPECT_NE(make_chain_rsn(3, 4).content_hash(), h);
}

// --- service: caching and key semantics --------------------------------------

TEST(ServeService, RepeatRequestHitsAndIsByteIdentical) {
  ServiceOptions opt;
  opt.threads = 1;
  ServeService service(opt);
  const std::string rsn = soc_rsn_text("u226");

  const json::Value cold =
      response(service, request_line("c", "metric", rsn));
  ASSERT_TRUE(resp_ok(cold));
  EXPECT_FALSE(resp_flag(cold, "cached"));
  const json::Value warm =
      response(service, request_line("w", "metric", rsn));
  ASSERT_TRUE(resp_ok(warm));
  EXPECT_TRUE(resp_flag(warm, "cached"));

  EXPECT_EQ(resp_str(cold, "result_sha256"), resp_str(warm, "result_sha256"));
  EXPECT_EQ(resp_str(cold, "key"), resp_str(warm, "key"));
  EXPECT_EQ(service.cache_stats().hits, 1u);
  EXPECT_EQ(service.cache_stats().misses, 1u);
}

TEST(ServeService, DefaultOptionsAndExplicitDefaultsShareOneKey) {
  ServiceOptions opt;
  opt.threads = 1;
  ServeService service(opt);
  const std::string rsn = soc_rsn_text("u226");

  const json::Value a = response(service, request_line("a", "metric", rsn));
  const json::Value b = response(
      service, request_line("b", "metric", rsn,
                            "\"options\":{\"count_sib\":true,"
                            "\"count_address\":false,"
                            "\"distribution\":false}"));
  ASSERT_TRUE(resp_ok(a));
  ASSERT_TRUE(resp_ok(b));
  EXPECT_EQ(resp_str(a, "key"), resp_str(b, "key"));
  EXPECT_TRUE(resp_flag(b, "cached"));

  // `packed` switches the engine implementation, not the result — the two
  // paths are pinned bit-identical by the corpus judge, so they must share
  // one cache entry.
  const json::Value c = response(
      service,
      request_line("c", "metric", rsn, "\"options\":{\"packed\":false}"));
  ASSERT_TRUE(resp_ok(c));
  EXPECT_EQ(resp_str(a, "key"), resp_str(c, "key"));
  EXPECT_TRUE(resp_flag(c, "cached"));

  // A semantically different option keys differently and recomputes.
  const json::Value d = response(
      service,
      request_line("d", "metric", rsn, "\"options\":{\"count_sib\":false}"));
  ASSERT_TRUE(resp_ok(d));
  EXPECT_NE(resp_str(a, "key"), resp_str(d, "key"));
  EXPECT_FALSE(resp_flag(d, "cached"));
  EXPECT_NE(resp_str(a, "result_sha256"), resp_str(d, "result_sha256"));
}

TEST(ServeService, HitIsByteIdenticalToFreshServiceColdRun) {
  // The acceptance property: a cache hit must serve the bytes a *cold*
  // daemon would compute.  Run every op on three ITC'02 SoCs through one
  // warm service, then re-run cold on a fresh service and compare blobs.
  const char* socs[] = {"u226", "d695", "g1023"};
  const char* ops[] = {"parse", "lint", "metric", "synth"};

  std::vector<std::string> warm_blobs;
  {
    ServiceOptions opt;
    opt.threads = 1;
    ServeService warm(opt);
    for (const char* soc : socs) {
      const std::string rsn = soc_rsn_text(soc);
      for (const char* op : ops) {
        const json::Value cold = response(warm, request_line("1", op, rsn));
        ASSERT_TRUE(resp_ok(cold)) << soc << " " << op;
        const json::Value hit = response(warm, request_line("2", op, rsn));
        ASSERT_TRUE(resp_ok(hit)) << soc << " " << op;
        EXPECT_TRUE(resp_flag(hit, "cached")) << soc << " " << op;
        const std::string sha = resp_str(cold, "result_sha256");
        EXPECT_EQ(sha, resp_str(hit, "result_sha256")) << soc << " " << op;
        warm_blobs.push_back(sha);
      }
    }
  }
  ServiceOptions opt;
  opt.threads = 1;
  ServeService fresh(opt);
  std::size_t i = 0;
  for (const char* soc : socs) {
    const std::string rsn = soc_rsn_text(soc);
    for (const char* op : ops) {
      const json::Value cold = response(fresh, request_line("3", op, rsn));
      ASSERT_TRUE(resp_ok(cold)) << soc << " " << op;
      EXPECT_FALSE(resp_flag(cold, "cached")) << soc << " " << op;
      EXPECT_EQ(resp_str(cold, "result_sha256"), warm_blobs[i++])
          << soc << " " << op << ": hit bytes drifted from a cold run";
    }
  }
}

TEST(ServeService, ResponseShaMatchesResultBytes) {
  ServiceOptions opt;
  opt.threads = 1;
  ServeService service(opt);
  const std::string raw =
      service.handle_line(request_line("x", "parse", soc_rsn_text("u226")));
  const auto doc = json::parse(raw);
  ASSERT_TRUE(doc.has_value());
  // Carve the rendered result object out of the envelope and digest it —
  // the advertised sha must describe the exact bytes on the wire.
  const std::size_t begin = raw.find("\"result\":");
  const std::size_t end = raw.find(",\"result_sha256\":");
  ASSERT_NE(begin, std::string::npos);
  ASSERT_NE(end, std::string::npos);
  const std::string blob = raw.substr(begin + 9, end - begin - 9);
  EXPECT_EQ(sha256_hex(blob), resp_str(*doc, "result_sha256"));
}

// --- service: coalescing, cancellation, timeouts -----------------------------

TEST(ServeService, ConcurrentIdenticalRequestsCoalesce) {
  ServiceOptions opt;
  opt.threads = 1;
  ServeService service(opt);
  const std::string rsn = soc_rsn_text("u226");
  // Deterministic rendezvous, no wall-clock assumptions: the sleep hook
  // holds the leader in flight far longer than the test runs, the waiter
  // counter tells us exactly when all three joined the flight, and the
  // cancel op then releases everyone at once.
  const std::string line = request_line(
      "lead", "parse", rsn, "\"options\":{\"debug_sleep_ms\":60000}");

  std::thread leader([&] {
    const auto r = json::parse(service.handle_line(line));
    ASSERT_TRUE(r.has_value());
    EXPECT_FALSE(resp_ok(*r));
    EXPECT_EQ(resp_str(*r, "error"), "cancelled");
  });
  // The leader's acquire registers the flight before compute starts; once
  // misses == 1 any identical request must coalesce, unconditionally.
  spin_until([&] { return service.cache_stats().misses == 1; });

  std::vector<std::thread> waiters;
  std::atomic<int> coalesced{0};
  for (int i = 0; i < 3; ++i) {
    waiters.emplace_back([&] {
      const auto r = json::parse(service.handle_line(line));
      ASSERT_TRUE(r.has_value());
      // Coalesced waiters share the leader's fate: cancelled.
      EXPECT_FALSE(resp_ok(*r));
      EXPECT_EQ(resp_str(*r, "error"), "cancelled");
      coalesced.fetch_add(1);
    });
  }
  spin_until([&] { return service.cache_stats().coalesced == 3; });
  ASSERT_TRUE(resp_ok(response(
      service, "{\"id\":\"c\",\"op\":\"cancel\",\"target_id\":\"lead\"}")));
  for (auto& t : waiters) t.join();
  leader.join();

  // One computation for four requests — the single-flight contract, pinned
  // on counters: 1 miss (the leader), 3 coalesced, 0 extra computations.
  const CacheStats s = service.cache_stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.coalesced, 3u);
  EXPECT_EQ(s.failures, 1u);
  EXPECT_EQ(s.insertions, 0u);
  EXPECT_EQ(coalesced.load(), 3);

  // Success-path delivery: the same four-way fan-in without cancellation
  // must answer everyone with one identical blob (whether a given request
  // coalesced or hit depends on timing; the bytes may not).
  const std::string fast = request_line(
      "f", "parse", rsn, "\"options\":{\"debug_sleep_ms\":200}");
  std::vector<std::thread> clients;
  std::mutex mu;
  std::vector<std::string> shas;
  for (int i = 0; i < 4; ++i) {
    clients.emplace_back([&] {
      const json::Value r = response(service, fast);
      EXPECT_TRUE(resp_ok(r));
      std::lock_guard<std::mutex> lock(mu);
      shas.push_back(resp_str(r, "result_sha256"));
    });
  }
  for (auto& t : clients) t.join();
  ASSERT_EQ(shas.size(), 4u);
  for (const std::string& sha : shas) EXPECT_EQ(sha, shas[0]);
}

TEST(ServeService, CancelFailsInFlightWithoutPoisoningTheKey) {
  ServiceOptions opt;
  opt.threads = 1;
  ServeService service(opt);
  const std::string rsn = soc_rsn_text("u226");
  const std::string line = request_line(
      "victim", "parse", rsn, "\"options\":{\"debug_sleep_ms\":30000}");

  std::thread leader([&] {
    const auto doc = json::parse(service.handle_line(line));
    ASSERT_TRUE(doc.has_value());
    EXPECT_FALSE(resp_ok(*doc));
    EXPECT_EQ(resp_str(*doc, "error"), "cancelled");
  });
  spin_until([&] { return service.cache_stats().misses == 1; });

  const json::Value cancel = response(
      service, "{\"id\":\"c\",\"op\":\"cancel\",\"target_id\":\"victim\"}");
  ASSERT_TRUE(resp_ok(cancel));
  leader.join();
  EXPECT_EQ(service.cache_stats().failures, 1u);
  EXPECT_EQ(service.cache_stats().insertions, 0u);

  // No poisoned entry: the same request (without the sleep) computes
  // fresh and succeeds.  Different sleep => different key, so use the
  // *same* key by retrying with the sleep — the flight is gone, so this
  // leads a new computation; cancel nobody and it completes.
  const json::Value retry =
      response(service, request_line("retry", "parse", rsn));
  EXPECT_TRUE(resp_ok(retry));
  EXPECT_FALSE(resp_flag(retry, "cached"));
  EXPECT_EQ(service.cache_stats().misses, 2u);
  EXPECT_EQ(service.cache_stats().insertions, 1u);
}

TEST(ServeService, PerRequestTimeoutCancelsAndDoesNotPoison) {
  ServiceOptions opt;
  opt.threads = 1;
  ServeService service(opt);
  const std::string rsn = soc_rsn_text("u226");

  const auto doc = json::parse(service.handle_line(request_line(
      "t", "parse", rsn,
      "\"options\":{\"debug_sleep_ms\":30000},\"timeout_ms\":50")));
  ASSERT_TRUE(doc.has_value());
  EXPECT_FALSE(resp_ok(*doc));
  EXPECT_EQ(resp_str(*doc, "error"),
            "timeout waiting for in-flight computation");

  // The abandoned leader cancelled its flight; once the engine notices
  // (1 ms poll) the flight fails and the key is clean for a retry.
  spin_until([&] { return service.cache_stats().failures == 1; });
  const json::Value retry =
      response(service, request_line("r", "parse", rsn));
  EXPECT_TRUE(resp_ok(retry));
  EXPECT_EQ(service.cache_stats().insertions, 1u);
}

// --- service: errors ---------------------------------------------------------

TEST(ServeService, ErrorsAreReportedAndNeverCached) {
  ServiceOptions opt;
  opt.threads = 1;
  ServeService service(opt);

  const auto expect_error = [&](const std::string& line,
                                const std::string& fragment) {
    const auto doc = json::parse(service.handle_line(line));
    ASSERT_TRUE(doc.has_value()) << line;
    EXPECT_FALSE(resp_ok(*doc)) << line;
    EXPECT_NE(resp_str(*doc, "error").find(fragment), std::string::npos)
        << line << " -> " << resp_str(*doc, "error");
  };
  expect_error("not json at all", "bad request");
  expect_error("{\"id\":\"x\"}", "missing \"op\"");
  expect_error("{\"op\":\"explode\"}", "unknown op");
  expect_error("{\"op\":\"metric\"}", "requires \"rsn\"");
  expect_error(request_line("x", "metric", "rsn\nbogus line\n"),
               "parse error");
  expect_error(request_line("x", "metric", soc_rsn_text("u226"),
                            "\"options\":{\"typo\":1}"),
               "unknown option");
  expect_error(request_line("x", "access", soc_rsn_text("u226")),
               "options.target");
  expect_error(request_line("x", "access", soc_rsn_text("u226"),
                            "\"options\":{\"target\":\"nope\"}"),
               "no node named");
  // Engine-side failures resolve the flight as failed and cache nothing:
  // the same failing request misses (and recomputes) every time.
  EXPECT_EQ(service.cache_stats().insertions, 0u);
  const std::uint64_t misses = service.cache_stats().misses;
  expect_error(request_line("y", "access", soc_rsn_text("u226"),
                            "\"options\":{\"target\":\"nope\"}"),
               "no node named");
  EXPECT_EQ(service.cache_stats().misses, misses + 1);
  EXPECT_EQ(service.cache_stats().insertions, 0u);
}

// --- service: histograms in the v2 report ------------------------------------

TEST(ServeService, RequestLatencyHistogramsSurfaceInReportV2) {
  obs::ObsContext ctx;
  obs::ContextScope scope(ctx);
  {
    ServiceOptions opt;
    opt.threads = 1;
    ServeService service(opt);
    const std::string rsn = soc_rsn_text("u226");
    ASSERT_TRUE(resp_ok(response(service, request_line("1", "parse", rsn))));
    ASSERT_TRUE(resp_ok(response(service, request_line("2", "parse", rsn))));
    ASSERT_TRUE(resp_ok(response(service, request_line("3", "metric", rsn))));
    // The service is destroyed (engine thread joined) before the counter
    // assertions: a request's child-context merge happens on the engine
    // side *after* its flight is signalled, so handle_line returning does
    // not yet guarantee the merge landed in `ctx`.
  }

  // Every request (hits included) lands in serve.request_us and in its
  // per-family histogram, on the transport thread's context.
  const auto hists = obs::histograms_snapshot();
  ASSERT_TRUE(hists.count("serve.request_us"));
  EXPECT_EQ(hists.at("serve.request_us").count, 3u);
  ASSERT_TRUE(hists.count("serve.request_us.parse"));
  EXPECT_EQ(hists.at("serve.request_us.parse").count, 2u);
  ASSERT_TRUE(hists.count("serve.request_us.metric"));
  EXPECT_EQ(hists.at("serve.request_us.metric").count, 1u);

  // ... and they surface in the run report without a schema bump.
  const std::string report = obs::report_json();
  EXPECT_NE(report.find("\"version\": 2"), std::string::npos);
  EXPECT_NE(report.find("\"serve.request_us\""), std::string::npos);
  EXPECT_NE(report.find("\"serve.request_us.metric\""), std::string::npos);
  // The engine-side counters merged into this context too (child
  // ObsContext per computed request, merge_into at completion).
  const auto counters = ctx.counters();
  ASSERT_TRUE(counters.count("serve.cache_insertions"));
  EXPECT_EQ(counters.at("serve.cache_insertions"), 2u);
}

// --- socket transport --------------------------------------------------------

class LineClient {
 public:
  explicit LineClient(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0)
        << std::strerror(errno);
  }
  ~LineClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  std::string round_trip(const std::string& line) {
    const std::string out = line + "\n";
    EXPECT_EQ(::send(fd_, out.data(), out.size(), 0),
              static_cast<ssize_t>(out.size()));
    std::string reply;
    char c;
    while (::recv(fd_, &c, 1, 0) == 1) {
      if (c == '\n') return reply;
      reply.push_back(c);
    }
    ADD_FAILURE() << "connection closed mid-reply";
    return reply;
  }

 private:
  int fd_ = -1;
};

TEST(ServeServer, JsonlOverTcpWithShutdown) {
  ServiceOptions sopt;
  sopt.threads = 1;
  ServeService service(sopt);
  ServerOptions nopt;  // port 0: ephemeral
  ServeServer server(service, nopt);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  ASSERT_GT(server.port(), 0);

  const std::string rsn = soc_rsn_text("u226");
  {
    LineClient a(server.port());
    const auto r1 = json::parse(a.round_trip(request_line("1", "parse", rsn)));
    ASSERT_TRUE(r1.has_value());
    EXPECT_TRUE(resp_ok(*r1));
    EXPECT_FALSE(resp_flag(*r1, "cached"));

    // Second connection shares the service and hits the cache.
    LineClient b(server.port());
    const auto r2 = json::parse(b.round_trip(request_line("2", "parse", rsn)));
    ASSERT_TRUE(r2.has_value());
    EXPECT_TRUE(resp_ok(*r2));
    EXPECT_TRUE(resp_flag(*r2, "cached"));
    EXPECT_EQ(resp_str(*r1, "result_sha256"), resp_str(*r2, "result_sha256"));

    const auto bye = json::parse(b.round_trip("{\"op\":\"shutdown\"}"));
    ASSERT_TRUE(bye.has_value());
    EXPECT_TRUE(resp_ok(*bye));
  }
  server.wait();  // unblocked by the shutdown request
  server.stop();
  EXPECT_EQ(service.cache_stats().hits, 1u);
}

}  // namespace
}  // namespace ftrsn::serve
