#include <gtest/gtest.h>

#include "gen/scale.hpp"
#include "graph/dataflow.hpp"
#include "itc02/itc02.hpp"
#include "synth/synth.hpp"

namespace ftrsn {
namespace {

TEST(ScaleSoc, HitsTargetWithinOneReplica) {
  gen::ScaleOptions opt;
  opt.base = "u226";
  opt.target_elements = 5000;
  const gen::ScaledSoc s = gen::scale_soc(opt);
  EXPECT_GT(s.replicas, 1);
  EXPECT_GT(s.clusters, 0);
  // Exact count overshoots the target by at most one replica's worth plus
  // the synthetic cluster SIBs (one element each).
  const long long per_replica = s.elements / s.replicas + 1;
  EXPECT_GE(s.elements, opt.target_elements - per_replica);
  EXPECT_LE(s.elements, opt.target_elements + per_replica + s.clusters);
  const itc02::SocSummary sum = itc02::summarize(s.soc);
  EXPECT_EQ(s.elements, static_cast<long long>(sum.sibs) + sum.chains);
  EXPECT_EQ(s.bits, sum.bits);
}

TEST(ScaleSoc, DeterministicAcrossCalls) {
  gen::ScaleOptions opt;
  opt.base = "d281";
  opt.target_elements = 3000;
  opt.seed = 99;
  const gen::ScaledSoc a = gen::scale_soc(opt);
  const gen::ScaledSoc b = gen::scale_soc(opt);
  ASSERT_EQ(a.soc.modules.size(), b.soc.modules.size());
  for (std::size_t i = 0; i < a.soc.modules.size(); ++i) {
    EXPECT_EQ(a.soc.modules[i].name, b.soc.modules[i].name);
    EXPECT_EQ(a.soc.modules[i].parent, b.soc.modules[i].parent);
    EXPECT_EQ(a.soc.modules[i].chain_bits, b.soc.modules[i].chain_bits);
  }
  opt.seed = 100;
  const gen::ScaledSoc c = gen::scale_soc(opt);
  EXPECT_NE(a.bits, c.bits) << "seed change must re-jitter chain lengths";
  EXPECT_EQ(a.elements, c.elements) << "topology must not depend on the seed";
}

TEST(ScaleSoc, ModulesAreTopologicallyOrdered) {
  gen::ScaleOptions opt;
  opt.base = "g1023";
  opt.target_elements = 4000;
  const gen::ScaledSoc s = gen::scale_soc(opt);
  for (std::size_t i = 0; i < s.soc.modules.size(); ++i)
    EXPECT_LT(s.soc.modules[i].parent, static_cast<int>(i));
}

TEST(ScaleSoc, FlowsThroughRsnGenerationAndAugmentation) {
  gen::ScaleOptions opt;
  opt.base = "u226";
  opt.target_elements = 800;
  const gen::ScaledSoc s = gen::scale_soc(opt);
  const Rsn rsn = itc02::generate_sib_rsn(s.soc);
  EXPECT_EQ(rsn.stats().bits, s.bits);
  const SynthResult ft = synthesize_fault_tolerant(rsn);
  EXPECT_GT(ft.augment.added_edges.size(), 0u);
  // The synthesized network must carry every original shift bit.
  EXPECT_GE(ft.rsn.stats().bits, rsn.stats().bits);
}

}  // namespace
}  // namespace ftrsn
