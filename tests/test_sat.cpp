#include <gtest/gtest.h>

#include "sat/solver.hpp"
#include "util/common.hpp"

namespace ftrsn::sat {
namespace {

TEST(Sat, TrivialSat) {
  Solver s;
  const int a = s.new_var();
  s.add_unit(Lit(a, false));
  ASSERT_EQ(s.solve(), SolveResult::kSat);
  EXPECT_TRUE(s.value(a));
}

TEST(Sat, TrivialUnsat) {
  Solver s;
  const int a = s.new_var();
  s.add_unit(Lit(a, false));
  s.add_unit(Lit(a, true));
  EXPECT_EQ(s.solve(), SolveResult::kUnsat);
}

TEST(Sat, PropagationChain) {
  Solver s;
  std::vector<int> v;
  for (int i = 0; i < 10; ++i) v.push_back(s.new_var());
  for (int i = 0; i + 1 < 10; ++i)
    s.add_binary(Lit(v[i], true), Lit(v[i + 1], false));  // v[i] -> v[i+1]
  s.add_unit(Lit(v[0], false));
  ASSERT_EQ(s.solve(), SolveResult::kSat);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(s.value(v[i]));
}

TEST(Sat, PigeonHole32) {
  // 3 pigeons, 2 holes: classic small UNSAT requiring real search.
  Solver s;
  int p[3][2];
  for (auto& row : p)
    for (int& x : row) x = s.new_var();
  for (int i = 0; i < 3; ++i)
    s.add_binary(Lit(p[i][0], false), Lit(p[i][1], false));
  for (int h = 0; h < 2; ++h)
    for (int i = 0; i < 3; ++i)
      for (int j = i + 1; j < 3; ++j)
        s.add_binary(Lit(p[i][h], true), Lit(p[j][h], true));
  EXPECT_EQ(s.solve(), SolveResult::kUnsat);
}

TEST(Sat, Assumptions) {
  Solver s;
  const int a = s.new_var();
  const int b = s.new_var();
  s.add_binary(Lit(a, true), Lit(b, false));  // a -> b
  EXPECT_EQ(s.solve({Lit(a, false), Lit(b, true)}), SolveResult::kUnsat);
  EXPECT_EQ(s.solve({Lit(a, false)}), SolveResult::kSat);
  EXPECT_TRUE(s.value(b));
  // Solver stays usable after an UNSAT-under-assumptions call.
  EXPECT_EQ(s.solve({Lit(b, true)}), SolveResult::kSat);
  EXPECT_FALSE(s.value(a));
}

TEST(Sat, XorChainSat) {
  // x0 ^ x1 = 1, x1 ^ x2 = 1, ... satisfiable with alternating values.
  Solver s;
  std::vector<int> v;
  for (int i = 0; i < 8; ++i) v.push_back(s.new_var());
  for (int i = 0; i + 1 < 8; ++i) {
    s.add_binary(Lit(v[i], false), Lit(v[i + 1], false));
    s.add_binary(Lit(v[i], true), Lit(v[i + 1], true));
  }
  ASSERT_EQ(s.solve(), SolveResult::kSat);
  for (int i = 0; i + 1 < 8; ++i) EXPECT_NE(s.value(v[i]), s.value(v[i + 1]));
}

/// Reference DPLL used to fuzz the CDCL solver on random 3-SAT instances.
bool brute_force(int n, const std::vector<std::vector<Lit>>& clauses) {
  for (int m = 0; m < (1 << n); ++m) {
    bool ok = true;
    for (const auto& c : clauses) {
      bool sat = false;
      for (Lit l : c)
        if ((((m >> l.var()) & 1) != 0) != l.neg()) sat = true;
      if (!sat) {
        ok = false;
        break;
      }
    }
    if (ok) return true;
  }
  return false;
}

TEST(Sat, FuzzAgainstBruteForce) {
  Rng rng(99);
  for (int trial = 0; trial < 60; ++trial) {
    const int n = 4 + static_cast<int>(rng.next_below(6));  // 4..9 vars
    const int m = 6 + static_cast<int>(rng.next_below(30));
    std::vector<std::vector<Lit>> clauses;
    Solver s;
    for (int i = 0; i < n; ++i) s.new_var();
    for (int i = 0; i < m; ++i) {
      std::vector<Lit> c;
      const int len = 1 + static_cast<int>(rng.next_below(3));
      for (int k = 0; k < len; ++k)
        c.push_back(Lit(static_cast<int>(rng.next_below(
                            static_cast<std::uint64_t>(n))),
                        rng.next_bool()));
      clauses.push_back(c);
      s.add_clause(c);
    }
    const bool expected = brute_force(n, clauses);
    const SolveResult got = s.solve();
    EXPECT_EQ(got == SolveResult::kSat, expected) << "trial " << trial;
    if (got == SolveResult::kSat) {
      // The produced model must satisfy every clause.
      for (const auto& c : clauses) {
        bool sat = false;
        for (Lit l : c) sat |= s.value(l.var()) != l.neg();
        EXPECT_TRUE(sat) << "trial " << trial;
      }
    }
  }
}

TEST(Sat, ConflictLimitReported) {
  // A hard instance with a conflict budget of 1 must return kLimit (or
  // solve instantly; pigeonhole 5/4 will not).
  Solver s;
  int p[5][4];
  for (auto& row : p)
    for (int& x : row) x = s.new_var();
  for (int i = 0; i < 5; ++i) {
    std::vector<Lit> c;
    for (int h = 0; h < 4; ++h) c.push_back(Lit(p[i][h], false));
    s.add_clause(c);
  }
  for (int h = 0; h < 4; ++h)
    for (int i = 0; i < 5; ++i)
      for (int j = i + 1; j < 5; ++j)
        s.add_binary(Lit(p[i][h], true), Lit(p[j][h], true));
  EXPECT_EQ(s.solve({}, 1), SolveResult::kLimit);
  EXPECT_EQ(s.solve({}, -1), SolveResult::kUnsat);
}

}  // namespace
}  // namespace ftrsn::sat
