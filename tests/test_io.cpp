#include <gtest/gtest.h>

#include <cstdio>

#include "io/rsn_text.hpp"
#include "itc02/itc02.hpp"
#include "synth/synth.hpp"

namespace ftrsn {
namespace {

TEST(Io, RoundTripExample) {
  const Rsn original = make_example_rsn();
  const std::string text = write_rsn_text(original);
  const Rsn parsed = parse_rsn_text(text);
  EXPECT_TRUE(original.structurally_equal(parsed));
}

TEST(Io, RoundTripChain) {
  const Rsn original = make_chain_rsn(7, 3);
  const Rsn parsed = parse_rsn_text(write_rsn_text(original));
  EXPECT_TRUE(original.structurally_equal(parsed));
}

TEST(Io, RoundTripGeneratedSoc) {
  const Rsn original = itc02::generate_sib_rsn(*itc02::find_soc("u226"));
  const Rsn parsed = parse_rsn_text(write_rsn_text(original));
  EXPECT_TRUE(original.structurally_equal(parsed));
  EXPECT_EQ(parsed.stats().bits, original.stats().bits);
}

TEST(Io, RoundTripFaultTolerantRsn) {
  // The FT RSN exercises defs (shared select cones), TMR replicas, pins,
  // select terms and dual ports.
  const Rsn original = make_example_rsn();
  const SynthResult synth = synthesize_fault_tolerant(original);
  const std::string text = write_rsn_text(synth.rsn);
  const Rsn parsed = parse_rsn_text(text);
  EXPECT_TRUE(synth.rsn.structurally_equal(parsed));
  EXPECT_EQ(parsed.select_terms().size(), synth.rsn.select_terms().size());
  EXPECT_EQ(parsed.primary_ins().size(), 2u);
  EXPECT_EQ(parsed.primary_outs().size(), 2u);
}

TEST(Io, TextSizeStaysLinear) {
  // Shared select cones must serialize as definitions, not expanded trees.
  const Rsn ft =
      synthesize_fault_tolerant(itc02::generate_sib_rsn(*itc02::find_soc("u226")))
          .rsn;
  const std::string text = write_rsn_text(ft);
  EXPECT_LT(text.size(), 3u * 1024 * 1024);
}

TEST(Io, RejectsMissingHeader) {
  EXPECT_THROW(parse_rsn_text("seg A len=1"), std::logic_error);
}

TEST(Io, RejectsUnknownElement) {
  EXPECT_THROW(parse_rsn_text("rsn\nfoo X\n"), std::logic_error);
}

TEST(Io, RejectsDanglingReference) {
  const char* text =
      "rsn\n"
      "decl_in SI\n"
      "decl_seg A len=1 shadow=0 role=instr\n"
      "decl_out SO\n"
      "in SI\n"
      "seg A len=1 shadow=0 rep=1 reset=0 role=instr mod=0 lvl=1 in=NOPE "
      "sel=1 cap=0 upd=0\n"
      "out SO in=A\n";
  EXPECT_THROW(parse_rsn_text(text), std::logic_error);
}

TEST(Io, RejectsBadExpression) {
  const char* text =
      "rsn\n"
      "decl_in SI\n"
      "decl_seg A len=1 shadow=0 role=instr\n"
      "decl_out SO\n"
      "in SI\n"
      "seg A len=1 shadow=0 rep=1 reset=0 role=instr mod=0 lvl=1 in=SI "
      "sel=(& 0 EN\n"
      "out SO in=A\n";
  EXPECT_THROW(parse_rsn_text(text), std::logic_error);
}

TEST(Io, SaveLoadFile) {
  const Rsn original = make_example_rsn();
  const std::string path = "/tmp/ftrsn_io_test.rsn";
  save_rsn(original, path);
  const Rsn loaded = load_rsn(path);
  EXPECT_TRUE(original.structurally_equal(loaded));
  std::remove(path.c_str());
}

TEST(Io, CommentsAndBlankLinesIgnored) {
  const char* text =
      "rsn\n"
      "# a comment\n"
      "\n"
      "decl_in SI\n"
      "decl_seg A len=2 shadow=0 role=instr\n"
      "decl_out SO\n"
      "in SI\n"
      "seg A len=2 shadow=0 rep=1 reset=0 role=instr mod=0 lvl=1 in=SI "
      "sel=EN cap=0 upd=0\n"
      "out SO in=A\n";
  const Rsn rsn = parse_rsn_text(text);
  EXPECT_EQ(rsn.stats().segments, 1);
  EXPECT_EQ(rsn.stats().bits, 2);
}

}  // namespace
}  // namespace ftrsn
