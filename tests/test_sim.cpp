#include <gtest/gtest.h>

#include "itc02/itc02.hpp"
#include "sim/csu_sim.hpp"

namespace ftrsn {
namespace {

std::vector<std::uint8_t> bits(std::initializer_list<int> v) {
  std::vector<std::uint8_t> out;
  for (int b : v) out.push_back(static_cast<std::uint8_t>(b));
  return out;
}

// Node ids in make_example_rsn(): 0=SI 1=A 2=B 3=mux1 4=C 5=mux2 6=D 7=SO.
constexpr NodeId kA = 1, kB = 2, kMux1 = 3, kC = 4, kMux2 = 5, kD = 6;

TEST(Sim, ExampleResetPathIsABD) {
  const Rsn rsn = make_example_rsn();
  CsuSimulator sim(rsn);
  const auto path = sim.active_path();
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path[0], kA);
  EXPECT_EQ(path[1], kB);
  EXPECT_EQ(path[2], kD);
  EXPECT_EQ(sim.active_path_bits(), 7);  // 2 + 3 + 2
}

TEST(Sim, ShiftThroughActivePath) {
  Rsn rsn = make_example_rsn();
  // Disable capture so the second CSU reads back the shifted-in data
  // instead of capturing fresh instrument values.
  for (NodeId seg : {kA, kB, kD}) rsn.set_cap_dis(seg, kCtrlTrue);
  CsuSimulator sim(rsn);
  // Shift 7 ones through the 7-bit path; initially all registers are zero,
  // so the first 7 observed bits are zeros.
  const CsuResult r = sim.csu(std::vector<std::uint8_t>(7, 1));
  EXPECT_EQ(r.path_bits, 7);
  for (std::uint8_t b : r.out_bits) EXPECT_EQ(b, 0);
  // Now every flip-flop on the path holds 1; shifting 7 zeros returns 7 ones.
  sim.poke_shadow(kA, 0, true);  // keep the same configuration (A[0]=1,B[0]=0)
  sim.poke_shadow(kB, 0, false);
  const CsuResult r2 = sim.csu(std::vector<std::uint8_t>(7, 0));
  for (std::uint8_t b : r2.out_bits) EXPECT_EQ(b, 1);
}

TEST(Sim, ReconfigurationSelectsC) {
  const Rsn rsn = make_example_rsn();
  CsuSimulator sim(rsn);
  // Write B[0] = 1 through a CSU so mux2 selects C afterwards.
  // Path order A(2) B(3) D(2): stream enters A first.  The last bit of the
  // stream ends at A[0] ... compute: after 7 shifts, A holds bits [6,5], B
  // holds [4,3,2], D holds [1,0] (stream index, 0 = first in).
  // We want B's shift register bit0 (the one latched into B[0]'s shadow)...
  // B's register: bit0 = stream[4].  Set A[0]=1 (keep mux1 on B).
  std::vector<std::uint8_t> stream(7, 0);
  stream[4] = 1;  // -> B.shift[0]
  stream[5] = 1;  // -> A.shift[1] (don't care)
  stream[6] = 1;  // -> A.shift[0] keeps mux1 selecting B
  sim.csu(stream);
  EXPECT_TRUE(sim.shadow_value(kB, 0));
  EXPECT_TRUE(sim.shadow_value(kA, 0));
  const auto path = sim.active_path();
  ASSERT_EQ(path.size(), 4u);
  EXPECT_EQ(path[0], kA);
  EXPECT_EQ(path[1], kB);
  EXPECT_EQ(path[2], kC);
  EXPECT_EQ(path[3], kD);
}

TEST(Sim, BypassBToSelectAOnly) {
  const Rsn rsn = make_example_rsn();
  CsuSimulator sim(rsn);
  sim.poke_shadow(kA, 0, false);  // mux1 forwards A directly
  const auto path = sim.active_path();
  ASSERT_EQ(path.size(), 2u);
  EXPECT_EQ(path[0], kA);
  EXPECT_EQ(path[1], kD);
}

TEST(Sim, CaptureReadsInstrumentData) {
  const Rsn rsn = make_example_rsn();
  CsuSimulator sim(rsn);
  sim.set_data_in(kB, bits({1, 0, 1}));
  // Capture loads B's data; shifting 7 cycles streams it out.
  const CsuResult r = sim.csu(std::vector<std::uint8_t>(7, 0));
  // Path A(2) B(3) D(2): out stream = D[1] D[0] B[2] B[1] B[0] A[1] A[0].
  // B was captured as shift[i] = data[i] -> B[2]=1, B[1]=0, B[0]=1.
  EXPECT_EQ(r.out_bits[2], 1);
  EXPECT_EQ(r.out_bits[3], 0);
  EXPECT_EQ(r.out_bits[4], 1);
}

TEST(Sim, CaptureDisableHolds) {
  Rsn rsn = make_example_rsn();
  rsn.set_cap_dis(kB, kCtrlTrue);
  CsuSimulator sim(rsn);
  sim.set_data_in(kB, bits({1, 1, 1}));
  const CsuResult r = sim.csu(std::vector<std::uint8_t>(7, 0));
  EXPECT_EQ(r.out_bits[2], 0);
  EXPECT_EQ(r.out_bits[3], 0);
  EXPECT_EQ(r.out_bits[4], 0);
}

TEST(Sim, UpdateDisableKeepsShadow) {
  Rsn rsn = make_example_rsn();
  rsn.set_up_dis(kB, kCtrlTrue);
  CsuSimulator sim(rsn);
  std::vector<std::uint8_t> stream(7, 1);
  sim.csu(stream);
  EXPECT_FALSE(sim.shadow_value(kB, 0));  // held at reset 0
  EXPECT_TRUE(sim.shadow_value(kA, 0));   // A still updates
}

TEST(Sim, StuckSegmentOutCorruptsDownstream) {
  const Rsn rsn = make_example_rsn();
  CsuSimulator sim(rsn);
  Forcing f;
  f.point = Forcing::Point::kSegmentOut;
  f.node = kA;
  f.value = false;
  sim.add_forcing(f);
  // Everything shifted in is replaced by constant 0 after A.
  // Pre-load path with ones first (without the fault this would read back 1s).
  const CsuResult r = sim.csu(std::vector<std::uint8_t>(7, 1));
  (void)r;
  const CsuResult r2 = sim.csu(std::vector<std::uint8_t>(7, 0));
  // B and D received only zeros through stuck A output.
  EXPECT_EQ(r2.out_bits[2], 0);
  EXPECT_EQ(r2.out_bits[3], 0);
  EXPECT_EQ(r2.out_bits[4], 0);
}

TEST(Sim, StuckMuxAddrLocksConfiguration) {
  const Rsn rsn = make_example_rsn();
  CsuSimulator sim(rsn);
  Forcing f;
  f.point = Forcing::Point::kMuxAddr;
  f.node = kMux2;
  f.value = true;  // mux2 stuck to input 1 = C always on path
  sim.add_forcing(f);
  const auto path = sim.active_path();
  ASSERT_EQ(path.size(), 4u);
  EXPECT_EQ(path[2], kC);
}

TEST(Sim, StuckShadowReplicaOutvotedByTmr) {
  Rsn rsn = make_example_rsn();
  rsn.set_shadow_replicas(kA, 3);
  // Rebuild mux1 address as a voted triple.
  CtrlPool& ctrl = rsn.ctrl();
  const CtrlRef voted =
      ctrl.mk_maj3(ctrl.shadow_bit(kA, 0, 0), ctrl.shadow_bit(kA, 0, 1),
                   ctrl.shadow_bit(kA, 0, 2));
  rsn.node_mut(kMux1).addr = voted;
  rsn.validate_or_die();
  CsuSimulator sim(rsn);
  Forcing f;
  f.point = Forcing::Point::kShadowReplica;
  f.node = kA;
  f.bit = 0;
  f.index = 1;  // replica 1 stuck at 0
  f.value = false;
  sim.add_forcing(f);
  // Reset value of A[0] is 1 -> two healthy replicas still vote 1.
  EXPECT_TRUE(sim.shadow_voted(kA, 0));
  const auto path = sim.active_path();
  ASSERT_EQ(path.size(), 3u);  // A, B, D unchanged
  EXPECT_EQ(path[1], kB);
}

TEST(Sim, StuckSelectBlocksCaptureAndUpdate) {
  // Shift enables are structural in SIB-style RSNs: a select stuck-at-0
  // does not block the data stream, but the segment can no longer capture
  // instrument data or update its shadow register.
  Rsn rsn = make_example_rsn();
  CsuSimulator sim(rsn);
  Forcing f;
  f.point = Forcing::Point::kCtrlNet;
  f.ctrl = rsn.node(kB).select;
  f.value = false;
  sim.add_forcing(f);
  sim.set_data_in(kB, bits({1, 1, 1}));
  const CsuResult r = sim.csu(std::vector<std::uint8_t>(7, 1));
  (void)r;
  // B still shifted (data passes through).
  for (std::uint8_t b : sim.shift_state(kB)) EXPECT_EQ(b, 1);
  // But B's shadow did not update despite ones shifted through it.
  EXPECT_FALSE(sim.shadow_value(kB, 0));
  // And B did not capture its instrument data at the CSU start (the ones
  // come from shifting, not capture: re-run with zeros to confirm shadow
  // still frozen).
  sim.csu(std::vector<std::uint8_t>(7, 0));
  EXPECT_FALSE(sim.shadow_value(kB, 0));
}

TEST(Sim, FullAccessOnU226) {
  // End-to-end on a generated benchmark RSN: open one module SIB and one
  // chain SIB via two CSUs, then shift a pattern through the chain.
  const Rsn rsn = itc02::generate_sib_rsn(*itc02::find_soc("u226"));
  CsuSimulator sim(rsn);
  const int top_bits = sim.active_path_bits();
  EXPECT_GT(top_bits, 0);
  // At reset only top-level SIB registers are on the path.
  for (NodeId seg : sim.active_path())
    EXPECT_EQ(rsn.node(seg).role, SegRole::kSibRegister);
}

}  // namespace
}  // namespace ftrsn
