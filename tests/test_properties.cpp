// Cross-module property tests: invariants that must hold on every
// generated SoC RSN and on randomized networks, independent of the
// specific paper numbers.
#include <gtest/gtest.h>

#include <set>

#include "augment/augment.hpp"
#include "fault/accessibility.hpp"
#include "graph/dataflow.hpp"
#include "itc02/itc02.hpp"
#include "sim/csu_sim.hpp"
#include "synth/synth.hpp"

namespace ftrsn {
namespace {

class AllSocs : public ::testing::TestWithParam<int> {
 protected:
  const itc02::Soc& soc() const {
    return itc02::socs()[static_cast<std::size_t>(GetParam())];
  }
};

INSTANTIATE_TEST_SUITE_P(Socs, AllSocs, ::testing::Range(0, 13),
                         [](const auto& info) {
                           return std::string(
                               itc02::table1()[static_cast<std::size_t>(
                                                   info.param)]
                                   .soc);
                         });

TEST_P(AllSocs, GeneratedRsnIsValidAcyclicAndConnected) {
  const Rsn rsn = itc02::generate_sib_rsn(soc());
  EXPECT_NO_THROW(rsn.validate_or_die());
  const DataflowGraph g = DataflowGraph::from_rsn(rsn);
  EXPECT_FALSE(g.has_cycle());
  // Every vertex lies on some root-to-sink path.
  const auto lv = g.levels();
  std::vector<bool> fwd(g.num_vertices(), false), bwd(g.num_vertices(), false);
  std::vector<NodeId> stack = g.roots();
  for (NodeId r : g.roots()) fwd[r] = true;
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    for (NodeId s : g.successors(v))
      if (!fwd[s]) {
        fwd[s] = true;
        stack.push_back(s);
      }
  }
  stack = g.sinks();
  for (NodeId s : g.sinks()) bwd[s] = true;
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    for (NodeId p : g.predecessors(v))
      if (!bwd[p]) {
        bwd[p] = true;
        stack.push_back(p);
      }
  }
  for (NodeId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_TRUE(fwd[v]) << "unreachable vertex " << rsn.node(v).name;
    EXPECT_TRUE(bwd[v]) << "sink-disconnected vertex " << rsn.node(v).name;
  }
  (void)lv;
}

TEST_P(AllSocs, ResetPathContainsExactlyTopLevelSibs) {
  const Rsn rsn = itc02::generate_sib_rsn(soc());
  CsuSimulator sim(rsn);
  int top_sibs = 0;
  for (NodeId id = 0; id < rsn.num_nodes(); ++id) {
    const RsnNode& n = rsn.node(id);
    if (n.is_segment() && n.role == SegRole::kSibRegister && n.hier_level == 1)
      ++top_sibs;
  }
  const auto path = sim.active_path();
  EXPECT_EQ(static_cast<int>(path.size()), top_sibs);
  for (NodeId seg : path) {
    EXPECT_EQ(rsn.node(seg).role, SegRole::kSibRegister);
    EXPECT_EQ(rsn.node(seg).hier_level, 1);
  }
}

TEST_P(AllSocs, FaultFreeAnalyzerFindsEverySegment) {
  const Rsn rsn = itc02::generate_sib_rsn(soc());
  const AccessAnalyzer analyzer(rsn);
  const auto acc = analyzer.accessible_fault_free();
  for (NodeId id = 0; id < rsn.num_nodes(); ++id)
    if (rsn.node(id).is_segment())
      EXPECT_TRUE(acc[id]) << rsn.node(id).name;
}

TEST_P(AllSocs, AugmentedGraphStaysAcyclicAndLevelForward) {
  const Rsn rsn = itc02::generate_sib_rsn(soc());
  const DataflowGraph g = DataflowGraph::from_rsn(rsn);
  AugmentOptions opt;
  opt.target_allowed.assign(g.num_vertices(), false);
  for (NodeId id = 0; id < rsn.num_nodes(); ++id)
    if (rsn.node(id).kind == NodeKind::kSegment ||
        rsn.node(id).kind == NodeKind::kPrimaryOut)
      opt.target_allowed[id] = true;
  const AugmentResult r = augment_connectivity(g, opt);
  ASSERT_EQ(r.edge_anchor.size(), r.added_edges.size());
  const auto lv = g.levels();
  std::set<std::pair<NodeId, NodeId>> seen;
  for (const DfEdge& e : g.edges()) seen.insert({e.from, e.to});
  for (const DfEdge& e : r.added_edges) {
    EXPECT_LE(lv[e.from], lv[e.to]);  // level-forward potential edges
    EXPECT_TRUE(seen.insert({e.from, e.to}).second)
        << "duplicate edge " << rsn.node(e.from).name << "->"
        << rsn.node(e.to).name;
  }
  std::vector<DfEdge> edges = g.edges();
  edges.insert(edges.end(), r.added_edges.begin(), r.added_edges.end());
  EXPECT_FALSE(DataflowGraph::from_edges(g.num_vertices(), edges, g.roots(),
                                         g.sinks())
                   .has_cycle());
}

TEST_P(AllSocs, SynthesizedRsnValidAndPreservesSegments) {
  const Rsn rsn = itc02::generate_sib_rsn(soc());
  const SynthResult r = synthesize_fault_tolerant(rsn);
  EXPECT_NO_THROW(r.rsn.validate_or_die());
  // Every original segment survives with identical length and role.
  for (NodeId id = 0; id < rsn.num_nodes(); ++id) {
    const RsnNode& o = rsn.node(id);
    if (!o.is_segment()) continue;
    const RsnNode& h = r.rsn.node(id);
    EXPECT_EQ(h.name, o.name);
    EXPECT_EQ(h.length, o.length);
    EXPECT_EQ(h.role, o.role);
  }
  // Reset configuration reproduces the original scan topology: the active
  // path contains the original top-level SIBs in order (address registers
  // interleaved).
  CsuSimulator orig_sim(rsn), ft_sim(r.rsn);
  const auto orig_path = orig_sim.active_path();
  const auto ft_path = ft_sim.active_path();
  std::vector<NodeId> ft_filtered;
  for (NodeId seg : ft_path)
    if (r.rsn.node(seg).role != SegRole::kAddressRegister)
      ft_filtered.push_back(seg);
  EXPECT_EQ(ft_filtered, orig_path);
}

}  // namespace
}  // namespace ftrsn
