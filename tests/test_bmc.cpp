#include <gtest/gtest.h>

#include "bmc/bmc.hpp"
#include "fault/accessibility.hpp"
#include "itc02/itc02.hpp"
#include "synth/synth.hpp"

namespace ftrsn {
namespace {

Fault fault_at(Forcing::Point p, NodeId node, bool value, int index = 0,
               CtrlRef ctrl = kCtrlInvalid) {
  Fault f;
  f.forcing.point = p;
  f.forcing.node = node;
  f.forcing.value = value;
  f.forcing.index = index;
  f.forcing.ctrl = ctrl;
  return f;
}

// Node ids in make_example_rsn(): 0=SI 1=A 2=B 3=mux1 4=C 5=mux2 6=D 7=SO.
constexpr NodeId kA = 1, kB = 2, kC = 4, kMux2 = 5, kD = 6;

TEST(Bmc, FaultFreeExampleAllAccessible) {
  const Rsn rsn = make_example_rsn();
  const BmcAccessChecker bmc(rsn);
  const auto acc = bmc.accessible_under(nullptr);
  for (NodeId id : {kA, kB, kC, kD}) EXPECT_TRUE(acc[id]);
}

TEST(Bmc, ChainFaultKillsEverything) {
  const Rsn rsn = make_chain_rsn(4, 2);
  const BmcAccessChecker bmc(rsn);
  const Fault f = fault_at(Forcing::Point::kSegmentOut, 2, false);
  const auto acc = bmc.accessible_under(&f);
  for (NodeId id = 0; id < rsn.num_nodes(); ++id)
    if (rsn.node(id).is_segment()) EXPECT_FALSE(acc[id]);
}

TEST(Bmc, StuckCIsBypassable) {
  const Rsn rsn = make_example_rsn();
  const BmcAccessChecker bmc(rsn);
  const Fault f = fault_at(Forcing::Point::kSegmentOut, kC, true);
  EXPECT_TRUE(bmc.accessible(kA, &f));
  EXPECT_TRUE(bmc.accessible(kB, &f));
  EXPECT_FALSE(bmc.accessible(kC, &f));
  EXPECT_TRUE(bmc.accessible(kD, &f));
}

TEST(Bmc, MuxAddrStuckLocksDirection) {
  const Rsn rsn = make_example_rsn();
  const BmcAccessChecker bmc(rsn);
  const Fault f0 = fault_at(Forcing::Point::kMuxAddr, kMux2, false);
  EXPECT_FALSE(bmc.accessible(kC, &f0));
  EXPECT_TRUE(bmc.accessible(kB, &f0));
  const Fault f1 = fault_at(Forcing::Point::kMuxAddr, kMux2, true);
  EXPECT_TRUE(bmc.accessible(kC, &f1));
  EXPECT_TRUE(bmc.accessible(kD, &f1));
}

/// The gold cross-check of the paper reproduction: the SAT/BMC engine and
/// the fast fixpoint analyzer must agree on every (fault, segment) pair of
/// the example RSN.
TEST(Bmc, AgreesWithFixpointOnExample) {
  const Rsn rsn = make_example_rsn();
  const BmcAccessChecker bmc(rsn);
  const AccessAnalyzer fast(rsn);
  const auto faults = enumerate_faults(rsn);
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const auto bmc_acc = bmc.accessible_under(&faults[i]);
    const auto fast_acc = fast.accessible_under(&faults[i]);
    for (NodeId id = 0; id < rsn.num_nodes(); ++id) {
      if (!rsn.node(id).is_segment()) continue;
      EXPECT_EQ(bmc_acc[id], fast_acc[id])
          << "fault " << faults[i].describe(rsn) << " segment "
          << rsn.node(id).name;
    }
  }
}

TEST(Bmc, AgreesWithFixpointOnChain) {
  const Rsn rsn = make_chain_rsn(3, 2);
  const BmcAccessChecker bmc(rsn);
  const AccessAnalyzer fast(rsn);
  for (const Fault& f : enumerate_faults(rsn)) {
    const auto bmc_acc = bmc.accessible_under(&f);
    const auto fast_acc = fast.accessible_under(&f);
    for (NodeId id = 0; id < rsn.num_nodes(); ++id)
      if (rsn.node(id).is_segment())
        EXPECT_EQ(bmc_acc[id], fast_acc[id]) << f.describe(rsn);
  }
}

TEST(Bmc, HierarchicalBoundMatters) {
  // A two-level SIB RSN needs more than one CSU to reach nested segments;
  // with steps=0 the bound derives from the hierarchy depth.
  itc02::Soc soc;
  soc.name = "tiny";
  soc.modules.push_back({"m0", -1, {3, 4}});
  const Rsn rsn = itc02::generate_sib_rsn(soc);
  const BmcAccessChecker bmc(rsn);
  EXPECT_GE(bmc.steps(), 3);
  const auto acc = bmc.accessible_under(nullptr);
  for (NodeId id = 0; id < rsn.num_nodes(); ++id)
    if (rsn.node(id).is_segment()) EXPECT_TRUE(acc[id]) << rsn.node(id).name;
}

TEST(Bmc, TinySocFaultCrossCheck) {
  itc02::Soc soc;
  soc.name = "tiny";
  soc.modules.push_back({"m0", -1, {2, 2}});
  soc.modules.push_back({"m1", -1, {3}});
  const Rsn rsn = itc02::generate_sib_rsn(soc);
  const BmcAccessChecker bmc(rsn);
  const AccessAnalyzer fast(rsn);
  const auto faults = enumerate_faults(rsn);
  // Spot-check a quarter of the fault universe (keeps runtime small).
  for (std::size_t i = 0; i < faults.size(); i += 4) {
    const auto bmc_acc = bmc.accessible_under(&faults[i]);
    const auto fast_acc = fast.accessible_under(&faults[i]);
    for (NodeId id = 0; id < rsn.num_nodes(); ++id)
      if (rsn.node(id).is_segment())
        EXPECT_EQ(bmc_acc[id], fast_acc[id])
            << faults[i].describe(rsn) << " @ " << rsn.node(id).name;
  }
}

}  // namespace
}  // namespace ftrsn
