// Focused tests of the individual hardening mechanisms on the synthesized
// fault-tolerant example network: duplicated ports, TMR address replicas,
// select-cone duplication and detour bootstrapping.
#include <gtest/gtest.h>

#include "fault/accessibility.hpp"
#include "fault/metric.hpp"
#include "synth/synth.hpp"

namespace ftrsn {
namespace {

const Rsn& ft_example() {
  static const Rsn rsn = synthesize_fault_tolerant(make_example_rsn()).rsn;
  return rsn;
}

NodeId by_name(const Rsn& rsn, const std::string& name) {
  for (NodeId id = 0; id < rsn.num_nodes(); ++id)
    if (rsn.node(id).name == name) return id;
  ADD_FAILURE() << "no node named " << name;
  return kInvalidNode;
}

Fault fault_at(Forcing::Point p, NodeId node, bool value, int index = 0) {
  Fault f;
  f.forcing.point = p;
  f.forcing.node = node;
  f.forcing.value = value;
  f.forcing.index = index;
  return f;
}

TEST(Hardening, PrimaryInFaultSurvivedBySecondPort) {
  const Rsn& ft = ft_example();
  const AccessAnalyzer analyzer(ft);
  const Fault f =
      fault_at(Forcing::Point::kPrimaryIn, ft.primary_ins()[0], true);
  const auto acc = analyzer.accessible_under(&f);
  // Every original segment stays accessible through SI2.
  for (const char* name : {"A", "B", "C", "D"})
    EXPECT_TRUE(acc[by_name(ft, name)]) << name;
}

TEST(Hardening, PrimaryOutFaultSurvivedBySecondPort) {
  const Rsn& ft = ft_example();
  const AccessAnalyzer analyzer(ft);
  const Fault f =
      fault_at(Forcing::Point::kPrimaryOut, ft.primary_outs()[0], false);
  const auto acc = analyzer.accessible_under(&f);
  for (const char* name : {"A", "B", "C", "D"})
    EXPECT_TRUE(acc[by_name(ft, name)]) << name;
}

TEST(Hardening, SingleShadowReplicaFaultIsOutvoted) {
  const Rsn& ft = ft_example();
  const AccessAnalyzer analyzer(ft);
  // Every TMR'd register: a single stuck replica must cost nothing.
  for (NodeId id = 0; id < ft.num_nodes(); ++id) {
    const RsnNode& n = ft.node(id);
    if (!n.is_segment() || n.shadow_replicas != 3) continue;
    for (int rep = 0; rep < 3; ++rep) {
      Fault f = fault_at(Forcing::Point::kShadowReplica, id, false, rep);
      f.forcing.bit = 0;
      const auto acc = analyzer.accessible_under(&f);
      for (const char* name : {"A", "B", "C", "D"})
        EXPECT_TRUE(acc[by_name(ft, name)])
            << "replica " << rep << " of " << n.name << " kills " << name;
    }
  }
}

TEST(Hardening, OriginalSelectSingleCopyIsVulnerableWithoutDuplication) {
  // Without select hardening (single shared cone from the original RSN),
  // a select-stem fault disables the gated segment's accesses.
  SynthOptions opt;
  opt.harden_select = false;
  const Rsn ft = synthesize_fault_tolerant(make_example_rsn(), opt).rsn;
  const auto report = compute_fault_tolerance(ft);
  SynthOptions hard;
  const Rsn ft2 = synthesize_fault_tolerant(make_example_rsn(), hard).rsn;
  const auto report2 = compute_fault_tolerance(ft2);
  EXPECT_GE(report2.seg_worst, report.seg_worst);
}

TEST(Hardening, MetricExcludesAddressRegistersByDefault) {
  const Rsn& ft = ft_example();
  MetricOptions def;
  const auto rep = compute_fault_tolerance(ft, def);
  MetricOptions all;
  all.count_address_registers = true;
  const auto rep_all = compute_fault_tolerance(ft, all);
  EXPECT_EQ(rep.counted_segments, 4);
  EXPECT_GT(rep_all.counted_segments, rep.counted_segments);
}

TEST(Hardening, EveryOriginalSegmentFaultCostsAtMostTwo) {
  // Data faults at original segments: the fault-tolerant example loses at
  // most the segment itself plus one companion.
  const Rsn& ft = ft_example();
  const AccessAnalyzer analyzer(ft);
  for (const char* name : {"B", "C", "D"}) {
    const NodeId seg = by_name(ft, name);
    const Fault f = fault_at(Forcing::Point::kSegmentOut, seg, false);
    const auto acc = analyzer.accessible_under(&f);
    int lost = 0;
    for (const char* other : {"A", "B", "C", "D"})
      lost += acc[by_name(ft, other)] ? 0 : 1;
    EXPECT_LE(lost, 2) << name;
    EXPECT_FALSE(acc[seg]) << name << " itself must be lost";
  }
}

}  // namespace
}  // namespace ftrsn
