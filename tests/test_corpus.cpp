// SHA-pinned differential golden corpus (ctest -L corpus).
//
// Full fault-metric sweeps — every ITC'02 SoC (original + fault-tolerant
// synthesis) plus fixed-seed random RSNs — are serialized to a canonical
// text form (counts, hexfloat aggregates, the full per-fault distribution)
// and digested with SHA-256.  The digests are pinned in
// tests/data/corpus/manifest.sha256, so any semantic drift in the metric —
// packed lanes, SIMD kernels, equivalence collapse, parallel fold — shows
// up as a one-line digest mismatch naming the network, and replaying the
// whole corpus takes seconds instead of the hours a legacy-loop
// differential sweep would need.
//
//   FTRSN_REGOLD=1            regenerate the manifest from the scalar
//                             engine, then verify the packed engine
//                             reproduces it (the regold itself is judged)
//   FTRSN_CORPUS_SOCS=a,b     SoC subset (sanitizer runs); random networks
//                             are kept unless the list names none of them
//   FTRSN_CORPUS_SCALAR=0|1   force the packed-vs-scalar cross-check off /
//                             on for every network (default: the two
//                             smallest SoCs and the random networks)
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "fault/metric.hpp"
#include "fault/metric_engine.hpp"
#include "itc02/itc02.hpp"
#include "synth/synth.hpp"
#include "util/common.hpp"

namespace ftrsn {
namespace {

const char* manifest_path() {
  return FTRSN_TEST_DATA_DIR "/corpus/manifest.sha256";
}

/// Canonical digest of one full metric sweep: the shared library routine
/// (fault/metric.hpp report_digest), which the serve metric responses also
/// embed — judge and server are pinned to the same bytes by construction.
std::string digest_report(const std::string& name,
                          const FaultToleranceReport& r) {
  return report_digest(name, r);
}

/// Same deterministic SoC fuzzer shape as test_metric_engine.cpp, with
/// pinned seeds so the corpus networks never drift.
itc02::Soc random_soc(Rng& rng, int max_modules) {
  itc02::Soc soc;
  soc.name = strprintf("fuzz%llu",
                       static_cast<unsigned long long>(rng.next_u64() % 1000));
  const int modules = 1 + static_cast<int>(rng.next_below(
                              static_cast<std::uint64_t>(max_modules)));
  for (int i = 0; i < modules; ++i) {
    itc02::Module m;
    m.name = strprintf("m%d", i);
    m.parent = (i > 0 && rng.next_below(3) == 0)
                   ? static_cast<int>(
                         rng.next_below(static_cast<std::uint64_t>(i)))
                   : -1;
    const int chains = 1 + static_cast<int>(rng.next_below(4));
    for (int c = 0; c < chains; ++c)
      m.chain_bits.push_back(1 + static_cast<int>(rng.next_below(20)));
    soc.modules.push_back(std::move(m));
  }
  return soc;
}

struct CorpusNetwork {
  std::string name;  ///< manifest key, e.g. "d695-ft" or "rand1-orig"
  Rsn rsn;
  bool cross_check_scalar = false;
};

std::set<std::string> env_soc_filter() {
  std::set<std::string> out;
  if (const char* env = std::getenv("FTRSN_CORPUS_SOCS"))
    for (const std::string& t : split(env, ','))
      out.insert(std::string(trim(t)));
  return out;
}

/// The corpus population: 13 ITC'02 SoCs x {orig, ft} + 3 fixed-seed
/// random RSNs x {orig, ft}.  The packed-vs-scalar cross-check defaults to
/// the cheap networks so the full-corpus replay stays fast; FTRSN_REGOLD
/// and FTRSN_CORPUS_SCALAR widen it.
std::vector<CorpusNetwork> build_corpus() {
  const std::set<std::string> filter = env_soc_filter();
  const bool want = !filter.empty();
  const char* scalar_env = std::getenv("FTRSN_CORPUS_SCALAR");
  const int scalar_mode = scalar_env ? std::atoi(scalar_env) : -1;
  const std::set<std::string> cheap = {"u226", "d695", "h953", "g1023"};

  std::vector<CorpusNetwork> out;
  const auto add = [&](const std::string& base, const Rsn& orig,
                       bool cheap_soc) {
    const bool scalar =
        scalar_mode >= 0 ? scalar_mode != 0 : cheap_soc;
    out.push_back({base + "-orig", orig, scalar});
    out.push_back(
        {base + "-ft", synthesize_fault_tolerant(orig).rsn, scalar});
  };
  for (const auto& soc : itc02::socs()) {
    if (want && !filter.count(soc.name)) continue;
    add(soc.name, itc02::generate_sib_rsn(soc), cheap.count(soc.name) > 0);
  }
  Rng rng(0xC0FFEED1CEull);
  for (int i = 0; i < 3; ++i) {
    const std::string base = strprintf("rand%d", i);
    if (want && !filter.count(base)) continue;
    add(base, itc02::generate_sib_rsn(random_soc(rng, 5)), true);
  }
  return out;
}

void read_manifest_into(std::map<std::string, std::string>& out) {
  std::ifstream in(manifest_path());
  std::string line;
  while (std::getline(in, line)) {
    const std::string_view t = trim(line);
    if (t.empty() || t[0] == '#') continue;
    const auto sp = t.find_first_of(" \t");
    ASSERT_NE(sp, std::string_view::npos)
        << "malformed manifest line: " << line;
    out[std::string(trim(t.substr(sp)))] = std::string(t.substr(0, sp));
  }
}

FaultToleranceReport sweep(const FaultMetricEngine& engine, bool packed,
                           int threads) {
  MetricEngineOptions eo;
  eo.metric.keep_distribution = true;
  eo.packed = packed;
  eo.threads = threads;
  return engine.evaluate(eo);
}

TEST(Corpus, PackedSweepsMatchPinnedManifest) {
  const bool regold =
      std::getenv("FTRSN_REGOLD") && std::atoi(std::getenv("FTRSN_REGOLD"));
  std::map<std::string, std::string> manifest;
  if (!regold) {
    std::ifstream probe(manifest_path());
    ASSERT_TRUE(probe.good())
        << "missing " << manifest_path()
        << " — run with FTRSN_REGOLD=1 to generate it";
    read_manifest_into(manifest);
  }

  std::map<std::string, std::string> fresh;
  for (const CorpusNetwork& net : build_corpus()) {
    const FaultMetricEngine engine(net.rsn);
    // Packed digests at 1/2/8 threads must agree with each other (the
    // deterministic-parallelism contract) before anything is compared to
    // the pin.
    std::string packed_digest;
    for (const int threads : {1, 2, 8}) {
      const std::string d =
          digest_report(net.name, sweep(engine, true, threads));
      if (packed_digest.empty())
        packed_digest = d;
      else
        EXPECT_EQ(d, packed_digest)
            << net.name << " packed digest drifts at threads=" << threads;
    }
    // Differential judge: the scalar engine must reproduce the packed
    // digest exactly (every network under regold, the cheap ones in a
    // normal replay).
    if (regold || net.cross_check_scalar) {
      const std::string scalar_digest =
          digest_report(net.name, sweep(engine, false, 1));
      EXPECT_EQ(packed_digest, scalar_digest)
          << net.name << " packed vs scalar engine";
    }
    fresh[net.name] = packed_digest;
    if (!regold) {
      const auto it = manifest.find(net.name);
      ASSERT_NE(it, manifest.end())
          << net.name << " not pinned in " << manifest_path()
          << " — run with FTRSN_REGOLD=1";
      EXPECT_EQ(packed_digest, it->second) << net.name << " digest mismatch";
    }
  }

  if (regold) {
    std::ofstream out(manifest_path());
    ASSERT_TRUE(out.good()) << "cannot write " << manifest_path();
    out << "# SHA-256 digests of canonical full-sweep metric reports\n"
           "# (tests/test_corpus.cpp digest_report).  Regenerate with\n"
           "#   FTRSN_REGOLD=1 ctest -L corpus\n";
    for (const auto& [name, hex] : fresh) out << hex << "  " << name << "\n";
    std::printf("regolded %zu networks -> %s\n", fresh.size(),
                manifest_path());
  } else {
    // Every pinned network must have been replayed (a silently shrinking
    // corpus would hollow the judge out) unless a subset was requested.
    if (env_soc_filter().empty())
      for (const auto& [name, hex] : manifest)
        EXPECT_TRUE(fresh.count(name)) << name << " pinned but not replayed";
  }
}

}  // namespace
}  // namespace ftrsn
