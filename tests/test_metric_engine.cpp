// Equivalence suite for FaultMetricEngine (ctest -L metric): the engine
// must reproduce the legacy serial metric loop bit for bit — every
// aggregate, the full per-fault distribution, and the worst-fault
// tie-break — on all 13 ITC'02 SoCs (original and fault-tolerant), on
// random hierarchical RSNs, and at every thread count.  Also covers the
// order-independent polarity pairing of the legacy fault-list overload,
// multi-fault set equivalence against AccessAnalyzer, and the ThreadPool.
//
// FTRSN_METRIC_ITERS=N scales the sampled fault counts and random trials
// (default 1; CI soaks run higher).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <numeric>
#include <vector>

#include "fault/accessibility.hpp"
#include "fault/metric.hpp"
#include "fault/metric_engine.hpp"
#include "itc02/itc02.hpp"
#include "synth/synth.hpp"
#include "util/common.hpp"
#include "util/simd.hpp"
#include "util/thread_pool.hpp"

namespace ftrsn {
namespace {

int metric_iters() {
  const char* env = std::getenv("FTRSN_METRIC_ITERS");
  const int n = env ? std::atoi(env) : 1;
  return n > 0 ? n : 1;
}

/// Deterministic sample of `limit` faults (the whole list if it fits),
/// preserving enumeration order so polarity pairs stay adjacent in some
/// samples and split in others.
std::vector<Fault> sample_faults(const std::vector<Fault>& all,
                                 std::size_t limit, std::uint64_t seed) {
  if (all.size() <= limit) return all;
  Rng rng(seed);
  std::vector<std::size_t> picks(all.size());
  std::iota(picks.begin(), picks.end(), std::size_t{0});
  for (std::size_t i = 0; i < limit; ++i) {
    const std::size_t j = i + rng.next_below(picks.size() - i);
    std::swap(picks[i], picks[j]);
  }
  picks.resize(limit);
  std::sort(picks.begin(), picks.end());
  std::vector<Fault> out;
  out.reserve(limit);
  for (const std::size_t i : picks) out.push_back(all[i]);
  return out;
}

void expect_identical(const FaultToleranceReport& legacy,
                      const FaultToleranceReport& engine,
                      const std::string& what) {
  EXPECT_EQ(engine.num_faults, legacy.num_faults) << what;
  EXPECT_EQ(engine.counted_segments, legacy.counted_segments) << what;
  EXPECT_EQ(engine.counted_bits, legacy.counted_bits) << what;
  EXPECT_EQ(engine.seg_worst, legacy.seg_worst) << what;
  EXPECT_EQ(engine.seg_avg, legacy.seg_avg) << what;
  EXPECT_EQ(engine.bit_worst, legacy.bit_worst) << what;
  EXPECT_EQ(engine.bit_avg, legacy.bit_avg) << what;
  EXPECT_EQ(engine.worst_fault_index, legacy.worst_fault_index) << what;
  ASSERT_EQ(engine.seg_fraction.size(), legacy.seg_fraction.size()) << what;
  EXPECT_EQ(engine.seg_fraction, legacy.seg_fraction) << what;
  EXPECT_EQ(engine.bit_fraction, legacy.bit_fraction) << what;
}

/// Legacy fault-list loop vs engine at 1/2/8 threads, full distributions.
void check_equivalence(const Rsn& rsn, const std::vector<Fault>& faults,
                       const std::string& what) {
  MetricOptions mo;
  mo.keep_distribution = true;
  const FaultToleranceReport legacy = compute_fault_tolerance(rsn, faults, mo);
  const FaultMetricEngine engine(rsn);
  MetricEngineOptions eo;
  eo.metric = mo;
  for (const int threads : {1, 2, 8}) {
    eo.threads = threads;
    const FaultToleranceReport rep = engine.evaluate_faults(faults, eo);
    expect_identical(legacy, rep,
                     what + " threads=" + std::to_string(threads));
    EXPECT_EQ(engine.last_stats().threads, threads) << what;
    EXPECT_EQ(engine.last_stats().faults, faults.size()) << what;
  }
}

itc02::Soc random_soc(Rng& rng, int max_modules) {
  itc02::Soc soc;
  soc.name = strprintf("fuzz%llu",
                       static_cast<unsigned long long>(rng.next_u64() % 1000));
  const int modules = 1 + static_cast<int>(rng.next_below(
                              static_cast<std::uint64_t>(max_modules)));
  for (int i = 0; i < modules; ++i) {
    itc02::Module m;
    m.name = strprintf("m%d", i);
    m.parent = (i > 0 && rng.next_below(3) == 0)
                   ? static_cast<int>(
                         rng.next_below(static_cast<std::uint64_t>(i)))
                   : -1;
    const int chains = 1 + static_cast<int>(rng.next_below(4));
    for (int c = 0; c < chains; ++c)
      m.chain_bits.push_back(1 + static_cast<int>(rng.next_below(20)));
    soc.modules.push_back(std::move(m));
  }
  return soc;
}

// --- engine vs legacy, ITC'02 -----------------------------------------------

TEST(MetricEngine, AllSocsOriginalBitIdentical) {
  const std::size_t limit = 1500 * static_cast<std::size_t>(metric_iters());
  for (const auto& soc : itc02::socs()) {
    const Rsn rsn = itc02::generate_sib_rsn(soc);
    const auto faults =
        sample_faults(enumerate_faults(rsn), limit, 0xC0FFEE);
    check_equivalence(rsn, faults, soc.name + "-orig");
  }
}

TEST(MetricEngine, AllSocsFaultTolerantBitIdentical) {
  const std::size_t limit = 300 * static_cast<std::size_t>(metric_iters());
  for (const auto& soc : itc02::socs()) {
    const Rsn rsn = itc02::generate_sib_rsn(soc);
    const Rsn ft = synthesize_fault_tolerant(rsn).rsn;
    const auto faults = sample_faults(enumerate_faults(ft), limit, 0xFEED);
    check_equivalence(ft, faults, soc.name + "-ft");
  }
}

TEST(MetricEngine, FullUniverseSmallSocs) {
  // Complete (unsampled) universes, original and hardened, including the
  // evaluate() convenience entry point.
  for (const char* name : {"u226", "d281"}) {
    const auto soc = itc02::find_soc(name);
    ASSERT_TRUE(soc.has_value());
    const Rsn rsn = itc02::generate_sib_rsn(*soc);
    check_equivalence(rsn, enumerate_faults(rsn), std::string(name) + "-orig");

    MetricOptions mo;
    mo.keep_distribution = true;
    const FaultToleranceReport legacy = compute_fault_tolerance(rsn, mo);
    const FaultMetricEngine engine(rsn);
    MetricEngineOptions eo;
    eo.metric = mo;
    expect_identical(legacy, engine.evaluate(eo),
                     std::string(name) + "-evaluate");
  }
}

TEST(MetricEngine, RandomRsnsBitIdentical) {
  Rng rng(20260805);
  const int trials = 4 * metric_iters();
  for (int trial = 0; trial < trials; ++trial) {
    const Rsn rsn = itc02::generate_sib_rsn(random_soc(rng, 5));
    check_equivalence(rsn, enumerate_faults(rsn),
                      strprintf("random-orig-%d", trial));
    const Rsn ft = synthesize_fault_tolerant(rsn).rsn;
    const auto faults = sample_faults(enumerate_faults(ft), 600,
                                      0xABBA + static_cast<std::uint64_t>(trial));
    check_equivalence(ft, faults, strprintf("random-ft-%d", trial));
  }
}

// --- order-independent polarity pairing (legacy fault-list overload) --------

TEST(MetricEngine, ReorderedFaultListKeepsPerFaultFractions) {
  // Regression for the polarity-pair reuse: the legacy loop used to assume
  // the sa0 twin of a pairable fault sat at index i-1, which silently
  // mis-paired any reordered or sampled list.  Pairing is now keyed by the
  // exact fault site, so a permuted list must yield the permuted fractions.
  const Rsn rsn = make_example_rsn();
  const auto faults = enumerate_faults(rsn);
  MetricOptions mo;
  mo.keep_distribution = true;
  const FaultToleranceReport canonical =
      compute_fault_tolerance(rsn, faults, mo);

  Rng rng(99);
  std::vector<std::size_t> perm(faults.size());
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  for (std::size_t i = perm.size(); i > 1; --i)
    std::swap(perm[i - 1], perm[rng.next_below(i)]);
  std::vector<Fault> shuffled;
  shuffled.reserve(faults.size());
  for (const std::size_t i : perm) shuffled.push_back(faults[i]);

  const FaultToleranceReport rep = compute_fault_tolerance(rsn, shuffled, mo);
  ASSERT_EQ(rep.seg_fraction.size(), faults.size());
  for (std::size_t k = 0; k < perm.size(); ++k) {
    EXPECT_EQ(rep.seg_fraction[k], canonical.seg_fraction[perm[k]]) << k;
    EXPECT_EQ(rep.bit_fraction[k], canonical.bit_fraction[perm[k]]) << k;
  }

  // The engine agrees on the shuffled list too.
  const FaultMetricEngine engine(rsn);
  MetricEngineOptions eo;
  eo.metric = mo;
  expect_identical(rep, engine.evaluate_faults(shuffled, eo), "shuffled");
}

// --- multi-fault sets and fault-free ----------------------------------------

TEST(MetricEngine, MultiFaultSetsMatchAccessAnalyzer) {
  Rng rng(0xD0B1E);
  const Rsn original = make_example_rsn();
  const Rsn ft = synthesize_fault_tolerant(original).rsn;
  for (const Rsn* rsn : {&original, &ft}) {
    const AccessAnalyzer analyzer(*rsn);
    const FaultMetricEngine engine(*rsn);
    const auto scratch = engine.make_scratch();
    const auto faults = enumerate_faults(*rsn);
    for (int k = 0; k < 40 * metric_iters(); ++k) {
      std::vector<Fault> set;
      const std::size_t n = 1 + rng.next_below(3);
      for (std::size_t i = 0; i < n; ++i)
        set.push_back(faults[rng.next_below(faults.size())]);
      EXPECT_EQ(engine.accessible_under_set(set, *scratch),
                analyzer.accessible_under_set(set))
          << "set " << k;
    }
  }
}

TEST(MetricEngine, FaultFreeMatchesAccessAnalyzer) {
  const Rsn rsn = make_example_rsn();
  const Rsn ft = synthesize_fault_tolerant(rsn).rsn;
  for (const Rsn* net : {&rsn, &ft}) {
    const AccessAnalyzer analyzer(*net);
    const FaultMetricEngine engine(*net);
    EXPECT_EQ(engine.accessible_fault_free(), analyzer.accessible_fault_free());
  }
}

// --- collapse and seeding levers --------------------------------------------

TEST(MetricEngine, CollapseAndSeedingAreBitExactLevers) {
  const auto soc = itc02::find_soc("u226");
  ASSERT_TRUE(soc.has_value());
  const Rsn rsn = itc02::generate_sib_rsn(*soc);
  MetricEngineOptions eo;
  eo.metric.keep_distribution = true;
  const FaultMetricEngine engine(rsn);
  const FaultToleranceReport base = engine.evaluate(eo);
  const MetricEngineStats st = engine.last_stats();
  EXPECT_LT(st.classes, st.faults);       // sa0/sa1 pairs collapse at least
  EXPECT_GT(st.collapse_ratio(), 1.0);
  EXPECT_GT(st.mask_cold_reused, 0u);     // baseline seeding actually reuses

  MetricEngineOptions no_collapse = eo;
  no_collapse.collapse_equivalent = false;
  expect_identical(base, engine.evaluate(no_collapse), "no-collapse");
  EXPECT_EQ(engine.last_stats().classes, engine.last_stats().faults);

  MetricEngineOptions no_seed = eo;
  no_seed.seed_baseline = false;
  expect_identical(base, engine.evaluate(no_seed), "no-seed");

  MetricEngineOptions no_pack = eo;
  no_pack.packed = false;
  expect_identical(base, engine.evaluate(no_pack), "no-pack");
  EXPECT_EQ(engine.last_stats().packed_batches, 0u);
}

// --- packed 64-lane mode ----------------------------------------------------

/// Scalar engine vs packed engine at 1/2/8 threads, full distributions,
/// plus the packed lane-accounting invariants.
void check_packed_vs_scalar(const FaultMetricEngine& engine,
                            const std::vector<Fault>& faults, bool collapse,
                            const std::string& what) {
  MetricEngineOptions eo;
  eo.metric.keep_distribution = true;
  eo.collapse_equivalent = collapse;
  eo.packed = false;
  const FaultToleranceReport scalar = engine.evaluate_faults(faults, eo);
  EXPECT_EQ(engine.last_stats().packed_batches, 0u) << what;
  EXPECT_STREQ(engine.last_stats().simd_kernel, "") << what;

  eo.packed = true;
  for (const int threads : {1, 2, 8}) {
    eo.threads = threads;
    const FaultToleranceReport rep = engine.evaluate_faults(faults, eo);
    expect_identical(scalar, rep,
                     what + " packed threads=" + std::to_string(threads));
    const MetricEngineStats st = engine.last_stats();
    EXPECT_GT(st.packed_batches, 0u) << what;
    // In packed mode every mask eval is a packed word eval.
    EXPECT_EQ(st.packed_words, st.mask_evals) << what;
    // Batches cover the class list exactly: ceil(classes / 64) blocks and
    // the mean occupancy that implies (only the tail word is partial).
    EXPECT_EQ(st.packed_batches, (st.classes + 63) / 64) << what;
    EXPECT_DOUBLE_EQ(
        st.lane_utilization,
        static_cast<double>(st.classes) /
            (64.0 * static_cast<double>(st.packed_batches)))
        << what;
    EXPECT_STREQ(st.simd_kernel, simd::active_ops().name) << what;
  }
}

TEST(MetricEnginePacked, LaneBoundariesBitIdentical) {
  // Class counts straddling every lane boundary: a single lane, a full
  // word minus one, exactly one word, one spilled lane, and a long list
  // with a partial tail word.  Collapse is off so the class count equals
  // the fault-list length exactly.
  const auto soc = itc02::find_soc("d695");
  ASSERT_TRUE(soc.has_value());
  const Rsn rsn = itc02::generate_sib_rsn(*soc);
  const auto all = enumerate_faults(rsn);
  ASSERT_GE(all.size(), 1000u);
  const FaultMetricEngine engine(rsn);
  for (const std::size_t n : {std::size_t{1}, std::size_t{63},
                              std::size_t{64}, std::size_t{65},
                              std::size_t{1000}}) {
    const std::vector<Fault> faults(all.begin(),
                                    all.begin() + static_cast<long>(n));
    check_packed_vs_scalar(engine, faults, /*collapse=*/false,
                           strprintf("d695-lanes-%zu", n));
    EXPECT_EQ(engine.last_stats().classes, n);
  }
}

TEST(MetricEnginePacked, EquivalenceCollapseInteraction) {
  // With collapse on, lane assignment happens per *class* representative;
  // the weighted expansion back to fault indices must stay bit-identical
  // to the scalar engine on polarity-paired and sampled lists alike.
  const auto soc = itc02::find_soc("u226");
  ASSERT_TRUE(soc.has_value());
  const Rsn rsn = itc02::generate_sib_rsn(*soc);
  const FaultMetricEngine engine(rsn);
  const auto all = enumerate_faults(rsn);
  check_packed_vs_scalar(engine, all, /*collapse=*/true, "u226-collapse");
  check_packed_vs_scalar(engine, sample_faults(all, 333, 0xBEEF),
                         /*collapse=*/true, "u226-collapse-sampled");

  const Rsn ft = synthesize_fault_tolerant(rsn).rsn;
  const FaultMetricEngine ft_engine(ft);
  check_packed_vs_scalar(ft_engine, enumerate_faults(ft), /*collapse=*/true,
                         "u226-ft-collapse");
}

TEST(MetricEnginePacked, RandomizedSoakBitIdentical) {
  // FTRSN_METRIC_ITERS-scaled soak over random RSNs with random fault
  // sample sizes (biased toward lane boundaries).
  Rng rng(0x9ACC3D);
  const int trials = 3 * metric_iters();
  for (int trial = 0; trial < trials; ++trial) {
    const Rsn rsn = itc02::generate_sib_rsn(random_soc(rng, 4));
    const Rsn ft = synthesize_fault_tolerant(rsn).rsn;
    for (const Rsn* net : {&rsn, &ft}) {
      const auto all = enumerate_faults(*net);
      std::size_t n = 1 + rng.next_below(all.size());
      if (rng.next_bool())  // snap to a lane boundary +/- 1
        n = std::min<std::size_t>(
            all.size(), 64 * (1 + rng.next_below(4)) + rng.next_below(3) - 1);
      if (n == 0) n = 1;
      const FaultMetricEngine engine(*net);
      check_packed_vs_scalar(
          engine, sample_faults(all, n, 0x50AC + trial),
          /*collapse=*/rng.next_bool(),
          strprintf("soak-%d-%s", trial, net == &rsn ? "orig" : "ft"));
    }
  }
}

TEST(MetricEnginePacked, EveryKernelProducesIdenticalReports) {
  // Force each runnable SIMD kernel and require byte-identical reports and
  // identical packed-word counts — the kernels are interchangeable down to
  // the counter level, not just in aggregate.
  const Rsn rsn = make_example_rsn();
  const Rsn ft = synthesize_fault_tolerant(rsn).rsn;
  const FaultMetricEngine engine(ft);
  MetricEngineOptions eo;
  eo.metric.keep_distribution = true;

  simd::set_kernel(simd::Kernel::kScalar);
  const FaultToleranceReport base = engine.evaluate(eo);
  const std::size_t base_words = engine.last_stats().packed_words;
  EXPECT_GT(base_words, 0u);
  for (const simd::Kernel k : simd::available()) {
    simd::set_kernel(k);
    expect_identical(base, engine.evaluate(eo),
                     std::string("kernel=") + simd::kernel_name(k));
    EXPECT_EQ(engine.last_stats().packed_words, base_words)
        << simd::kernel_name(k);
    EXPECT_STREQ(engine.last_stats().simd_kernel, simd::kernel_name(k));
  }
  simd::reset_kernel();
}

// --- ThreadPool -------------------------------------------------------------

TEST(ThreadPool, ResolveThreads) {
  EXPECT_GE(ThreadPool::resolve_threads(0), 1);
  EXPECT_EQ(ThreadPool::resolve_threads(3), 3);
  EXPECT_GE(ThreadPool::resolve_threads(-5), 1);
}

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  for (const int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.num_threads(), threads);
    const std::size_t n = 1000;
    std::vector<std::atomic<int>> hits(n);
    for (auto& h : hits) h.store(0);
    pool.parallel_for(n, 7, [&](int worker, std::size_t begin,
                                std::size_t end) {
      EXPECT_GE(worker, 0);
      EXPECT_LT(worker, threads);
      for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
    });
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ThreadPool, ReusableAcrossCalls) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<std::size_t> sum{0};
    pool.parallel_for(100, 3, [&](int, std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) sum.fetch_add(i);
    });
    EXPECT_EQ(sum.load(), 100u * 99u / 2u) << round;
  }
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(64, 1,
                        [&](int, std::size_t begin, std::size_t) {
                          if (begin == 42) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // Pool stays usable after an exception.
  std::atomic<int> ran{0};
  pool.parallel_for(8, 1,
                    [&](int, std::size_t, std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 8);
}

TEST(ThreadPool, ZeroAndNegativeThreadsNormalize) {
  // threads <= 0 resolves to hardware concurrency, never below 1, and the
  // pool is immediately usable at the resolved size.
  for (const int requested : {0, -1, -100}) {
    ThreadPool pool(requested);
    EXPECT_GE(pool.num_threads(), 1) << requested;
    EXPECT_EQ(pool.num_threads(), ThreadPool::resolve_threads(requested));
    std::atomic<int> ran{0};
    pool.parallel_for(16, 2,
                      [&](int, std::size_t b, std::size_t e) {
                        ran.fetch_add(static_cast<int>(e - b));
                      });
    EXPECT_EQ(ran.load(), 16) << requested;
  }
}

TEST(ThreadPool, AttemptsEveryChunkDespiteException) {
  // Exception contract: a throwing chunk does not abort the job — all of
  // [0, n) is still attempted exactly once, then the error is rethrown.
  ThreadPool pool(4);
  const std::size_t n = 256;
  std::vector<std::atomic<int>> hits(n);
  for (auto& h : hits) h.store(0);
  EXPECT_THROW(
      pool.parallel_for(n, 4,
                        [&](int, std::size_t begin, std::size_t end) {
                          for (std::size_t i = begin; i < end; ++i)
                            hits[i].fetch_add(1);
                          if (begin == 8) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, SerialPathMatchesExceptionContract) {
  // The serial fast path (1 thread) follows the same rules as the threaded
  // path: every chunk attempted, *first* exception rethrown.
  ThreadPool pool(1);
  std::vector<int> hits(20, 0);
  try {
    pool.parallel_for(20, 2, [&](int, std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) ++hits[i];
      if (begin == 4) throw std::runtime_error("first");
      if (begin == 12) throw std::runtime_error("second");
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "first");  // chunks run in order when serial
  }
  for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i], 1) << i;
}

TEST(ThreadPool, EmptyAndSerialFastPath) {
  ThreadPool pool(2);
  int calls = 0;
  pool.parallel_for(0, 8, [&](int, std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  // n <= chunk runs inline on the caller.
  pool.parallel_for(5, 8, [&](int worker, std::size_t begin, std::size_t end) {
    EXPECT_EQ(worker, 0);
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 5u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace ftrsn
