#include <gtest/gtest.h>

#include <algorithm>

#include "graph/dataflow.hpp"
#include "itc02/itc02.hpp"

namespace ftrsn {
namespace {

DataflowGraph diamond() {
  // 0 -> {1, 2} -> 3 (two vertex-independent paths)
  return DataflowGraph::from_edges(
      4, {{0, 1}, {0, 2}, {1, 3}, {2, 3}}, {0}, {3});
}

TEST(Dataflow, FromRsnExample) {
  const Rsn rsn = make_example_rsn();
  const DataflowGraph g = DataflowGraph::from_rsn(rsn);
  EXPECT_EQ(g.num_vertices(), rsn.num_nodes());
  // SI, A, B, C, D, mux1, mux2, SO: edges SI->A, A->B, A->mux1, B->mux1,
  // mux1->C, mux1->mux2, C->mux2, mux2->D, D->SO.
  EXPECT_EQ(g.num_edges(), 9u);
  EXPECT_FALSE(g.has_cycle());
}

TEST(Dataflow, TopoAndLevels) {
  const DataflowGraph g = diamond();
  const auto order = g.topo_order();
  EXPECT_EQ(order.size(), 4u);
  EXPECT_EQ(order.front(), 0u);
  EXPECT_EQ(order.back(), 3u);
  const auto lv = g.levels();
  EXPECT_EQ(lv[0], 0);
  EXPECT_EQ(lv[1], 1);
  EXPECT_EQ(lv[2], 1);
  EXPECT_EQ(lv[3], 2);
}

TEST(Dataflow, LevelsAreLongestPath) {
  const auto g = DataflowGraph::from_edges(
      4, {{0, 1}, {1, 2}, {0, 2}, {2, 3}}, {0}, {3});
  const auto lv = g.levels();
  EXPECT_EQ(lv[2], 2);  // via 0->1->2
  EXPECT_EQ(lv[3], 3);
}

TEST(Dataflow, CycleDetection) {
  auto g = DataflowGraph::from_edges(3, {{0, 1}, {1, 2}, {2, 0}}, {0}, {2});
  EXPECT_TRUE(g.has_cycle());
  const auto cycle = g.find_cycle();
  EXPECT_EQ(cycle.size(), 3u);
  EXPECT_THROW(g.topo_order(), std::logic_error);
  EXPECT_FALSE(diamond().has_cycle());
}

TEST(Dataflow, FindCycleReturnsRealCycle) {
  const auto g = DataflowGraph::from_edges(
      6, {{0, 1}, {1, 2}, {2, 3}, {3, 1}, {3, 4}, {4, 5}}, {0}, {5});
  const auto cycle = g.find_cycle();
  ASSERT_FALSE(cycle.empty());
  // Every consecutive pair (and the wrap-around) must be an edge.
  for (std::size_t i = 0; i < cycle.size(); ++i) {
    const NodeId from = cycle[i];
    const NodeId to = cycle[(i + 1) % cycle.size()];
    const auto& succ = g.successors(from);
    EXPECT_NE(std::find(succ.begin(), succ.end(), to), succ.end());
  }
}

TEST(Dataflow, VertexDisjointPathsDiamond) {
  const DataflowGraph g = diamond();
  EXPECT_EQ(g.vertex_disjoint_paths(0, 3), 2);
  EXPECT_EQ(g.vertex_disjoint_paths(0, 1), 1);
}

TEST(Dataflow, VertexDisjointPathsSharedVertex) {
  // Two edge-disjoint but NOT vertex-disjoint paths through vertex 2.
  const auto g = DataflowGraph::from_edges(
      6, {{0, 1}, {0, 2}, {1, 2}, {2, 3}, {2, 4}, {3, 5}, {4, 5}}, {0}, {5});
  EXPECT_EQ(g.vertex_disjoint_paths(0, 5), 1);
}

TEST(Dataflow, ChainRsnViolatesEverywhere) {
  const Rsn rsn = make_chain_rsn(4, 2);
  const DataflowGraph g = DataflowGraph::from_rsn(rsn);
  const auto bad = g.connectivity_violations();
  EXPECT_EQ(bad.size(), 4u);  // every segment is a single point of failure
}

TEST(Dataflow, SibRsnViolatesEverywhere) {
  // Even with the SIB bypass muxes, the top-level chain is a series path:
  // every vertex fails the two-vertex-independent-paths requirement.
  const Rsn rsn = itc02::generate_sib_rsn(*itc02::find_soc("u226"));
  const DataflowGraph g = DataflowGraph::from_rsn(rsn);
  const auto bad = g.connectivity_violations();
  EXPECT_GT(bad.size(), 0u);
}

TEST(Dataflow, SingleRootBoundaryIsAlwaysViolated) {
  // In a single-root DAG the topologically first non-root vertex can only
  // be reached directly from the root, so it can never have two
  // vertex-independent in-paths.  This is exactly why the paper's final
  // synthesis (§III-E-4) duplicates the primary scan ports.
  const auto g = DataflowGraph::from_edges(
      6,
      {{0, 1}, {0, 2}, {1, 3}, {1, 4}, {2, 3}, {2, 4}, {3, 5}, {4, 5}},
      {0}, {5});
  const auto bad = g.connectivity_violations();
  // 1 and 2 fail on the in-side (only one first hop from the root each);
  // 3 and 4 fail on the out-side (single sink).
  EXPECT_EQ(bad.size(), 4u);
}

TEST(Dataflow, DualPortLadderPasses) {
  // With duplicated scan-in and scan-out ports, a fully cross-connected
  // middle layer satisfies the two-vertex-independent-paths requirement.
  const auto g = DataflowGraph::from_edges(
      8,
      {{0, 2}, {1, 2}, {0, 3}, {1, 3}, {2, 4}, {3, 4}, {2, 5}, {3, 5},
       {4, 6}, {5, 6}, {4, 7}, {5, 7}},
      {0, 1}, {6, 7});
  EXPECT_TRUE(g.connectivity_violations().empty());
}

TEST(Dataflow, MultiRootSuperSource) {
  // Vertex 3 is reachable from two different roots via disjoint paths.
  const auto g = DataflowGraph::from_edges(
      6, {{0, 2}, {1, 2}, {0, 3}, {1, 3}, {2, 4}, {3, 4}, {3, 5}, {2, 5}},
      {0, 1}, {4, 5});
  EXPECT_TRUE(g.connectivity_violations().empty());
}

TEST(Dataflow, DotExport) {
  const DataflowGraph g = diamond();
  const std::string dot = g.to_dot({"r", "x", "y", "s"}, {{0, 3}});
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n3 [style=dashed"), std::string::npos);
  EXPECT_NE(dot.find("label=\"x\""), std::string::npos);
}

}  // namespace
}  // namespace ftrsn
