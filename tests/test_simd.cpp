// SIMD kernel dispatch tests: every kernel the host can run must be
// byte-identical to the scalar reference on every input shape (the packed
// fault-metric path and the SHA-pinned corpus depend on this being a hard
// contract, not a fast-math approximation).  kUnrolled is always
// available, so the scalar-vs-vector differential below runs even on
// hosts without AVX2 or NEON.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <vector>

#include "util/common.hpp"
#include "util/simd.hpp"

namespace ftrsn {
namespace {

std::vector<std::uint64_t> random_words(Rng& rng, std::size_t n) {
  std::vector<std::uint64_t> out(n);
  for (auto& w : out) w = rng.next_u64();
  return out;
}

// Sizes straddling every vector width boundary (AVX2 = 4 words, NEON = 2,
// unrolled = 4) plus empty and a cache-line-crossing bulk size.
const std::size_t kSizes[] = {0, 1, 2, 3, 4, 5, 7, 8, 15, 64, 257};

TEST(Simd, ScalarAndUnrolledAlwaysAvailable) {
  const auto ks = simd::available();
  EXPECT_NE(std::find(ks.begin(), ks.end(), simd::Kernel::kScalar), ks.end());
  EXPECT_NE(std::find(ks.begin(), ks.end(), simd::Kernel::kUnrolled),
            ks.end());
  for (const simd::Kernel k : ks) {
    ASSERT_NE(simd::ops(k), nullptr) << simd::kernel_name(k);
    EXPECT_STREQ(simd::ops(k)->name, simd::kernel_name(k));
  }
}

TEST(Simd, ParseKernelRoundTrips) {
  for (const simd::Kernel k :
       {simd::Kernel::kScalar, simd::Kernel::kUnrolled, simd::Kernel::kAvx2,
        simd::Kernel::kNeon}) {
    simd::Kernel parsed;
    ASSERT_TRUE(simd::parse_kernel(simd::kernel_name(k), parsed));
    EXPECT_EQ(parsed, k);
  }
  simd::Kernel parsed;
  EXPECT_FALSE(simd::parse_kernel("sse9", parsed));
  EXPECT_FALSE(simd::parse_kernel("", parsed));
}

TEST(Simd, SetKernelPinsActiveOps) {
  simd::set_kernel(simd::Kernel::kUnrolled);
  EXPECT_EQ(simd::active_kernel(), simd::Kernel::kUnrolled);
  EXPECT_STREQ(simd::active_ops().name, "unrolled");
  simd::set_kernel(simd::Kernel::kScalar);
  EXPECT_EQ(simd::active_kernel(), simd::Kernel::kScalar);
  simd::reset_kernel();
  // Whatever auto-selection picks must be an available kernel.
  const auto ks = simd::available();
  EXPECT_NE(std::find(ks.begin(), ks.end(), simd::active_kernel()), ks.end());
}

/// Every available kernel vs the scalar reference, all four ops, every
/// boundary size, fresh random inputs per size.
TEST(Simd, AllKernelsByteIdenticalToScalar) {
  const simd::Ops& ref = *simd::ops(simd::Kernel::kScalar);
  Rng rng(0x51D3);
  for (const simd::Kernel k : simd::available()) {
    if (k == simd::Kernel::kScalar) continue;
    const simd::Ops& ops = *simd::ops(k);
    for (const std::size_t n : kSizes) {
      const auto cf = random_words(rng, n);
      const auto rb = random_words(rng, n);
      const auto sel = random_words(rng, n);
      const auto bad = random_words(rng, n);
      const auto upd = random_words(rng, n);
      const auto shadow = random_words(rng, n);
      const auto cap = random_words(rng, n);

      // gather: indices into a separately sized pool, including repeats.
      const std::size_t pool_n = 97;
      const auto pool = random_words(rng, pool_n);
      std::vector<std::int32_t> idx(n);
      for (auto& i : idx)
        i = static_cast<std::int32_t>(rng.next_below(pool_n));
      std::vector<std::uint64_t> want(n), got(n);
      ref.gather(want.data(), pool.data(), idx.data(), n);
      ops.gather(got.data(), pool.data(), idx.data(), n);
      EXPECT_EQ(got, want) << ops.name << " gather n=" << n;

      ref.write_acc(want.data(), cf.data(), rb.data(), sel.data(),
                    bad.data(), upd.data(), shadow.data(), n);
      ops.write_acc(got.data(), cf.data(), rb.data(), sel.data(), bad.data(),
                    upd.data(), shadow.data(), n);
      EXPECT_EQ(got, want) << ops.name << " write_acc n=" << n;

      ref.read_acc(want.data(), cf.data(), rb.data(), sel.data(), bad.data(),
                   cap.data(), n);
      ops.read_acc(got.data(), cf.data(), rb.data(), sel.data(), bad.data(),
                   cap.data(), n);
      EXPECT_EQ(got, want) << ops.name << " read_acc n=" << n;

      // or_and2_new mutates the accumulator and returns the fresh lanes;
      // both the final accumulator and the return must agree.
      auto acc_want = random_words(rng, n);
      auto acc_got = acc_want;
      const std::uint64_t fresh_want =
          ref.or_and2_new(acc_want.data(), cf.data(), rb.data(), n);
      const std::uint64_t fresh_got =
          ops.or_and2_new(acc_got.data(), cf.data(), rb.data(), n);
      EXPECT_EQ(acc_got, acc_want) << ops.name << " or_and2_new acc n=" << n;
      EXPECT_EQ(fresh_got, fresh_want)
          << ops.name << " or_and2_new fresh n=" << n;
    }
  }
}

/// Semantics spot-check of the scalar reference itself (the other kernels
/// are judged against it, so it needs its own ground truth).
TEST(Simd, ScalarReferenceFormulas) {
  const simd::Ops& ref = *simd::ops(simd::Kernel::kScalar);
  const std::uint64_t cf = 0b1111, rb = 0b1110, sel = 0b1101, bad = 0b0001,
                      upd = 0b0100, shadow = 0b1100, cap = 0b1011;
  std::uint64_t dst = 0;
  ref.write_acc(&dst, &cf, &rb, &sel, &bad, &upd, &shadow, 1);
  EXPECT_EQ(dst, cf & rb & sel & ~bad & (upd | ~shadow));
  ref.read_acc(&dst, &cf, &rb, &sel, &bad, &cap, 1);
  EXPECT_EQ(dst, cf & rb & sel & ~bad & cap);
  std::uint64_t acc = 0b1000;
  const std::uint64_t fresh = ref.or_and2_new(&acc, &cf, &rb, 1);
  EXPECT_EQ(fresh, (cf & rb) & ~std::uint64_t{0b1000});
  EXPECT_EQ(acc, 0b1000 | (cf & rb));
}

}  // namespace
}  // namespace ftrsn
