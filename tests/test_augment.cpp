#include <gtest/gtest.h>

#include <set>

#include "augment/augment.hpp"
#include "itc02/itc02.hpp"

namespace ftrsn {
namespace {

DataflowGraph example_graph() {
  return DataflowGraph::from_rsn(make_example_rsn());
}

/// The degree requirement holds on the augmented graph wherever it is
/// satisfiable in principle (paper §III-D: a constraint is only enforced
/// when the potential edge set can meet it — e.g. a unique first-level
/// vertex can never receive two level-forward in-edges).
void expect_degrees_met(const DataflowGraph& g,
                        const std::vector<DfEdge>& added,
                        const AugmentOptions& used_options) {
  AugmentOptions full = used_options;
  full.window = 0;
  const auto potentials = potential_edges(g, full);
  std::vector<int> possible_out(g.num_vertices(), 0),
      possible_in(g.num_vertices(), 0);
  for (const Candidate& c : potentials) {
    ++possible_out[c.edge.from];
    ++possible_in[c.edge.to];
  }
  std::vector<DfEdge> edges = g.edges();
  edges.insert(edges.end(), added.begin(), added.end());
  std::vector<std::set<NodeId>> preds(g.num_vertices()), succs(g.num_vertices());
  for (const DfEdge& e : edges) {
    preds[e.to].insert(e.from);
    succs[e.from].insert(e.to);
  }
  std::set<NodeId> roots(g.roots().begin(), g.roots().end());
  std::set<NodeId> sinks(g.sinks().begin(), g.sinks().end());
  const auto& target_ok = used_options.target_allowed;
  std::vector<std::set<NodeId>> orig_preds(g.num_vertices()),
      orig_succs(g.num_vertices());
  for (const DfEdge& e : g.edges()) {
    orig_preds[e.to].insert(e.from);
    orig_succs[e.from].insert(e.to);
  }
  for (NodeId v = 0; v < g.num_vertices(); ++v) {
    if (!sinks.count(v)) {
      const std::size_t want = std::min<std::size_t>(
          2, orig_succs[v].size() + static_cast<std::size_t>(possible_out[v]));
      EXPECT_GE(succs[v].size(), want) << "out of " << v;
    }
    if (!roots.count(v) && (target_ok.empty() || target_ok[v])) {
      const std::size_t want = std::min<std::size_t>(
          2, orig_preds[v].size() + static_cast<std::size_t>(possible_in[v]));
      EXPECT_GE(preds[v].size(), want) << "in of " << v;
    }
  }
}

TEST(Augment, PotentialEdgesAreLevelForward) {
  const DataflowGraph g = example_graph();
  AugmentOptions opt;
  opt.window = 0;  // full E_P
  const auto lv = g.levels();
  for (const Candidate& c : potential_edges(g, opt)) {
    EXPECT_GE(lv[c.edge.to], lv[c.edge.from]);
    EXPECT_EQ(c.cost, 1 + (lv[c.edge.to] - lv[c.edge.from]));
  }
}

TEST(Augment, PotentialEdgesExcludeExisting) {
  const DataflowGraph g = example_graph();
  AugmentOptions opt;
  opt.window = 0;
  std::set<std::pair<NodeId, NodeId>> existing;
  for (const DfEdge& e : g.edges()) existing.insert({e.from, e.to});
  for (const Candidate& c : potential_edges(g, opt))
    EXPECT_FALSE(existing.count({c.edge.from, c.edge.to}));
}

class AugmentEngines
    : public ::testing::TestWithParam<AugmentOptions::Engine> {};

TEST_P(AugmentEngines, ExampleGraphDegreesMet) {
  const DataflowGraph g = example_graph();
  AugmentOptions opt;
  opt.engine = GetParam();
  opt.window = 0;
  const AugmentResult r = augment_connectivity(g, opt);
  EXPECT_FALSE(r.added_edges.empty());
  expect_degrees_met(g, r.added_edges, opt);
  // Augmented graph stays acyclic.
  std::vector<DfEdge> edges = g.edges();
  edges.insert(edges.end(), r.added_edges.begin(), r.added_edges.end());
  EXPECT_FALSE(DataflowGraph::from_edges(g.num_vertices(), edges, g.roots(),
                                         g.sinks())
                   .has_cycle());
}

INSTANTIATE_TEST_SUITE_P(AllEngines, AugmentEngines,
                         ::testing::Values(AugmentOptions::Engine::kFlow,
                                           AugmentOptions::Engine::kIlp,
                                           AugmentOptions::Engine::kGreedy),
                         [](const auto& info) {
                           switch (info.param) {
                             case AugmentOptions::Engine::kFlow: return "flow";
                             case AugmentOptions::Engine::kIlp: return "ilp";
                             default: return "greedy";
                           }
                         });

TEST(Augment, FlowMatchesIlpOnExample) {
  const DataflowGraph g = example_graph();
  AugmentOptions opt;
  opt.window = 0;
  opt.engine = AugmentOptions::Engine::kFlow;
  const AugmentResult flow = augment_connectivity(g, opt);
  opt.engine = AugmentOptions::Engine::kIlp;
  const AugmentResult ilp = augment_connectivity(g, opt);
  ASSERT_TRUE(flow.optimal);
  ASSERT_TRUE(ilp.optimal);
  EXPECT_EQ(flow.cost, ilp.cost);
}

TEST(Augment, GreedyNeverBeatsOptimal) {
  const DataflowGraph g = example_graph();
  AugmentOptions opt;
  opt.window = 0;
  opt.engine = AugmentOptions::Engine::kFlow;
  const AugmentResult flow = augment_connectivity(g, opt);
  opt.engine = AugmentOptions::Engine::kGreedy;
  const AugmentResult greedy = augment_connectivity(g, opt);
  EXPECT_GE(greedy.cost, flow.cost);
}

TEST(Augment, WindowedMatchesFullOnSmallGraphs) {
  // The windowed candidate set must not change the optimum on small
  // instances (cheap short edges dominate).
  const DataflowGraph g = example_graph();
  AugmentOptions full, windowed;
  full.window = 0;
  windowed.window = 4;
  const AugmentResult a = augment_connectivity(g, full);
  const AugmentResult b = augment_connectivity(g, windowed);
  EXPECT_EQ(a.cost, b.cost);
}

TEST(Augment, U226FlowAugmentation) {
  const Rsn rsn = itc02::generate_sib_rsn(*itc02::find_soc("u226"));
  const DataflowGraph g = DataflowGraph::from_rsn(rsn);
  AugmentOptions opt;
  // Targets: segments and the primary out (as the synthesizer does).
  opt.target_allowed.assign(g.num_vertices(), false);
  for (NodeId id = 0; id < rsn.num_nodes(); ++id)
    if (rsn.node(id).kind == NodeKind::kSegment ||
        rsn.node(id).kind == NodeKind::kPrimaryOut)
      opt.target_allowed[id] = true;
  const AugmentResult r = augment_connectivity(g, opt);
  EXPECT_FALSE(r.added_edges.empty());
  expect_degrees_met(g, r.added_edges, opt);
  std::vector<DfEdge> edges = g.edges();
  edges.insert(edges.end(), r.added_edges.begin(), r.added_edges.end());
  EXPECT_FALSE(DataflowGraph::from_edges(g.num_vertices(), edges, g.roots(),
                                         g.sinks())
                   .has_cycle());
}

TEST(Augment, StrictModeRemovesInteriorViolations) {
  const Rsn rsn = make_example_rsn();
  const DataflowGraph g = DataflowGraph::from_rsn(rsn);
  AugmentOptions opt;
  opt.window = 0;
  opt.strict_two_connectivity = true;
  const AugmentResult r = augment_connectivity(g, opt);
  std::vector<DfEdge> edges = g.edges();
  edges.insert(edges.end(), r.added_edges.begin(), r.added_edges.end());
  const DataflowGraph ga = DataflowGraph::from_edges(
      g.num_vertices(), edges, g.roots(), g.sinks());
  // With a single scan-in/out port the port-adjacent vertices stay
  // violated (impossible in principle); interior vertices must be fixed.
  const auto bad = ga.connectivity_violations();
  const auto lv = ga.levels();
  const int max_level = *std::max_element(lv.begin(), lv.end());
  for (NodeId v : bad)
    EXPECT_TRUE(lv[v] <= 1 || lv[v] >= max_level - 1)
        << "interior vertex " << v << " still violated";
}

TEST(Augment, CustomCostFunction) {
  const DataflowGraph g = example_graph();
  AugmentOptions opt;
  opt.window = 0;
  opt.edge_cost = [](int delta) { return 10 + 100 * delta; };
  const AugmentResult r = augment_connectivity(g, opt);
  EXPECT_FALSE(r.added_edges.empty());
  EXPECT_GE(r.cost, 10 * static_cast<long long>(r.added_edges.size()));
}

}  // namespace
}  // namespace ftrsn
