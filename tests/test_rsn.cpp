#include <gtest/gtest.h>

#include "rsn/rsn.hpp"

namespace ftrsn {
namespace {

TEST(CtrlPool, ConstantsAndHashConsing) {
  CtrlPool pool;
  EXPECT_EQ(pool.constant(false), kCtrlFalse);
  EXPECT_EQ(pool.constant(true), kCtrlTrue);
  const CtrlRef a = pool.shadow_bit(3, 0);
  const CtrlRef b = pool.shadow_bit(3, 0);
  EXPECT_EQ(a, b);
  const CtrlRef c = pool.shadow_bit(3, 1);
  EXPECT_NE(a, c);
  EXPECT_EQ(pool.mk_and(a, c), pool.mk_and(c, a));  // commutative interning
  EXPECT_EQ(pool.mk_or(a, c), pool.mk_or(c, a));
}

TEST(CtrlPool, SimplificationRules) {
  CtrlPool pool;
  const CtrlRef a = pool.shadow_bit(1, 0);
  EXPECT_EQ(pool.mk_and(a, kCtrlTrue), a);
  EXPECT_EQ(pool.mk_and(a, kCtrlFalse), kCtrlFalse);
  EXPECT_EQ(pool.mk_or(a, kCtrlFalse), a);
  EXPECT_EQ(pool.mk_or(a, kCtrlTrue), kCtrlTrue);
  EXPECT_EQ(pool.mk_and(a, a), a);
  EXPECT_EQ(pool.mk_not(pool.mk_not(a)), a);
  EXPECT_EQ(pool.mk_not(kCtrlTrue), kCtrlFalse);
}

TEST(CtrlPool, Eval) {
  CtrlPool pool;
  const CtrlRef a = pool.shadow_bit(1, 0);
  const CtrlRef b = pool.shadow_bit(2, 0);
  const CtrlRef en = pool.enable_input();
  const CtrlRef expr = pool.mk_or(pool.mk_and(en, a), pool.mk_not(b));
  const auto atoms = [&](const CtrlNode& n) {
    if (n.op == CtrlOp::kEnable) return true;
    return n.seg == 1;  // a=1, b=0
  };
  EXPECT_TRUE(pool.eval(expr, atoms));
  const auto atoms2 = [&](const CtrlNode& n) {
    if (n.op == CtrlOp::kEnable) return false;
    return n.seg != 1;  // a=0, b=1
  };
  EXPECT_FALSE(pool.eval(expr, atoms2));
}

TEST(CtrlPool, EvalWithForcedNodes) {
  CtrlPool pool;
  const CtrlRef a = pool.shadow_bit(1, 0);
  const CtrlRef b = pool.shadow_bit(2, 0);
  const CtrlRef expr = pool.mk_and(a, b);
  std::vector<std::int8_t> forced(pool.size(), -1);
  forced[static_cast<std::size_t>(a)] = 0;  // stuck-at-0 on the a stem
  const auto all_one = [](const CtrlNode&) { return true; };
  EXPECT_TRUE(pool.eval(expr, all_one));
  EXPECT_FALSE(pool.eval(expr, all_one, &forced));
  forced[static_cast<std::size_t>(expr)] = 1;  // stuck-at-1 on the AND gate
  EXPECT_TRUE(pool.eval(expr, all_one, &forced));
}

TEST(CtrlPool, Maj3Votes) {
  CtrlPool pool;
  const CtrlRef a = pool.shadow_bit(1, 0, 0);
  const CtrlRef b = pool.shadow_bit(1, 0, 1);
  const CtrlRef c = pool.shadow_bit(1, 0, 2);
  const CtrlRef maj = pool.mk_maj3(a, b, c);
  std::vector<std::int8_t> forced(pool.size(), -1);
  forced[static_cast<std::size_t>(b)] = 0;  // one replica stuck: outvoted
  const auto all_one = [](const CtrlNode&) { return true; };
  EXPECT_TRUE(pool.eval(maj, all_one, &forced));
  forced[static_cast<std::size_t>(c)] = 0;  // two replicas stuck: lost
  EXPECT_FALSE(pool.eval(maj, all_one, &forced));
}

TEST(CtrlPool, ToString) {
  CtrlPool pool;
  const std::vector<std::string> names = {"", "A", "B"};
  const CtrlRef en = pool.enable_input();
  const CtrlRef a = pool.shadow_bit(1, 0);
  const CtrlRef b = pool.shadow_bit(2, 0);
  const CtrlRef conj = pool.mk_and(en, a);
  const CtrlRef neg = pool.mk_not(b);
  const CtrlRef expr = pool.mk_or(conj, neg);
  EXPECT_EQ(pool.to_string(expr, names), "((EN & A) | !B)");
}

TEST(Rsn, ExampleRsnValidatesAndCounts) {
  const Rsn rsn = make_example_rsn();
  const RsnStats s = rsn.stats();
  EXPECT_EQ(s.segments, 4);
  EXPECT_EQ(s.muxes, 2);
  EXPECT_EQ(s.bits, 11);  // 2 + 3 + 4 + 2
  EXPECT_EQ(s.levels, 2);
  EXPECT_EQ(s.primary_ins, 1);
  EXPECT_EQ(s.primary_outs, 1);
}

TEST(Rsn, ChainRsn) {
  const Rsn rsn = make_chain_rsn(5, 8);
  const RsnStats s = rsn.stats();
  EXPECT_EQ(s.segments, 5);
  EXPECT_EQ(s.muxes, 0);
  EXPECT_EQ(s.bits, 40);
}

TEST(Rsn, TopoOrderRootsFirst) {
  const Rsn rsn = make_example_rsn();
  const auto order = rsn.topo_order();
  ASSERT_EQ(order.size(), rsn.num_nodes());
  std::vector<int> pos(rsn.num_nodes());
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = static_cast<int>(i);
  for (NodeId id = 0; id < rsn.num_nodes(); ++id) {
    const RsnNode& n = rsn.node(id);
    if (n.kind == NodeKind::kSegment || n.kind == NodeKind::kPrimaryOut)
      EXPECT_LT(pos[n.scan_in], pos[id]);
    if (n.kind == NodeKind::kMux) {
      EXPECT_LT(pos[n.mux_in[0]], pos[id]);
      EXPECT_LT(pos[n.mux_in[1]], pos[id]);
    }
  }
}

TEST(Rsn, ValidateRejectsDanglingScanIn) {
  Rsn rsn;
  const NodeId in = rsn.add_primary_in("SI");
  const NodeId seg = rsn.add_segment("s", 1, kInvalidNode);
  rsn.add_primary_out("SO", seg);
  (void)in;
  EXPECT_THROW(rsn.validate_or_die(), std::logic_error);
}

TEST(Rsn, ValidateRejectsShadowRefWithoutShadow) {
  Rsn rsn;
  const NodeId in = rsn.add_primary_in("SI");
  const NodeId seg = rsn.add_segment("s", 1, in, /*has_shadow=*/false);
  rsn.add_primary_out("SO", seg);
  rsn.set_select(seg, rsn.ctrl().shadow_bit(seg, 0));
  EXPECT_THROW(rsn.validate_or_die(), std::logic_error);
}

TEST(Rsn, ValidateRejectsCycle) {
  Rsn rsn;
  const NodeId in = rsn.add_primary_in("SI");
  const NodeId a = rsn.add_segment("a", 1, in);
  const NodeId mux = rsn.add_mux("m", in, a, kCtrlFalse);
  rsn.set_scan_in(a, mux);  // a -> mux -> a
  rsn.add_primary_out("SO", a);
  EXPECT_THROW(rsn.validate_or_die(), std::logic_error);
}

TEST(Rsn, StructurallyEqualSelf) {
  const Rsn a = make_example_rsn();
  const Rsn b = make_example_rsn();
  EXPECT_TRUE(a.structurally_equal(b));
  Rsn c = make_example_rsn();
  c.set_reset_shadow(1, 0);
  EXPECT_FALSE(a.structurally_equal(c));
}

}  // namespace
}  // namespace ftrsn
