// Verified auto-repair suite (ctest -L lint): per-rule broken fixture ->
// fixed -> re-lints clean, structural guards that must keep the network
// intact, idempotence fix(fix(n)) == fix(n), rejection of deliberately
// miswired rewrites by the SAT layer, the teeth of the differential
// fault-metric check, obs counter consistency, SARIF fix-record golden
// file, and a randomized differential soak over defect-injected SIB
// networks.
//
// FTRSN_FIX_ITERS=N scales the random soak trials (default 1; CI soaks
// run higher).  FTRSN_REGOLD=1 regenerates tests/data/lint_fix_golden.sarif.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "io/rsn_text.hpp"
#include "lint/fix.hpp"
#include "lint/lint.hpp"
#include "lint/sarif.hpp"
#include "obs/obs.hpp"
#include "itc02/itc02.hpp"
#include "util/common.hpp"

namespace ftrsn {
namespace {

int fix_iters() {
  const char* env = std::getenv("FTRSN_FIX_ITERS");
  const int n = env ? std::atoi(env) : 1;
  return n > 0 ? n : 1;
}

bool fires(const std::vector<lint::Diagnostic>& diags,
           const std::string& rule) {
  for (const auto& d : diags)
    if (d.rule == rule) return true;
  return false;
}

bool any_fixable(const std::vector<lint::Diagnostic>& diags) {
  for (const auto& d : diags)
    if (lint::FixEngine::fixable_rule(d.rule)) return true;
  return false;
}

const lint::AppliedFix* find_fix(const lint::FixResult& res,
                                 const std::string& rule) {
  for (const auto& f : res.fixes)
    if (f.rule == rule) return &f;
  return nullptr;
}

/// The deterministic multi-defect fixture: an identical-input mux, a
/// constant-address mux, an unused primary scan-in, and a segment that
/// becomes a dead end once the constant mux is collapsed (so repairing it
/// takes a second pass).
constexpr const char* kBrokenFixture =
    "rsn\n"
    "decl_in SI\n"
    "decl_in SI_unused\n"
    "decl_seg A len=2 shadow=1 role=instr\n"
    "decl_seg B len=1 shadow=0 role=instr\n"
    "decl_seg DEAD len=1 shadow=0 role=instr\n"
    "decl_mux M_ID\n"
    "decl_mux M_CONST\n"
    "decl_out SO\n"
    "in SI\n"
    "in SI_unused\n"
    "seg A len=2 shadow=1 rep=1 reset=0 role=instr mod=0 lvl=1 in=SI sel=1 "
    "cap=0 upd=0\n"
    "mux M_ID mod=0 lvl=1 in0=A in1=A addr=@A.0.0\n"
    "seg B len=1 shadow=0 rep=1 reset=0 role=instr mod=0 lvl=1 in=M_ID sel=1 "
    "cap=0 upd=0\n"
    "mux M_CONST mod=0 lvl=1 in0=B in1=DEAD addr=0\n"
    "seg DEAD len=1 shadow=0 rep=1 reset=0 role=instr mod=0 lvl=1 in=SI "
    "sel=1 cap=0 upd=0\n"
    "out SO in=M_CONST\n";

NodeId node_by_name(const Rsn& rsn, const std::string& name) {
  for (NodeId id = 0; id < rsn.num_nodes(); ++id)
    if (rsn.node(id).name == name) return id;
  return kInvalidNode;
}

// --- per-rule fixtures -------------------------------------------------------

TEST(LintFix, DropsUnusedPrimaryIn) {
  const Rsn rsn = parse_rsn_text(
      "rsn\n"
      "decl_in SI\n"
      "decl_in SI_spare\n"
      "decl_seg A len=1 shadow=0 role=instr\n"
      "decl_out SO\n"
      "in SI\n"
      "in SI_spare\n"
      "seg A len=1 shadow=0 rep=1 reset=0 role=instr mod=0 lvl=1 in=SI sel=1 "
      "cap=0 upd=0\n"
      "out SO in=A\n",
      /*validate=*/false);
  ASSERT_TRUE(fires(lint::lint_rsn(rsn), "unused-primary-in"));
  const lint::FixResult res = lint::fix_rsn(rsn);
  EXPECT_TRUE(res.changed);
  EXPECT_EQ(res.applied, 1u);
  EXPECT_EQ(res.rejected, 0u);
  EXPECT_FALSE(fires(res.residual, "unused-primary-in"));
  EXPECT_EQ(node_by_name(res.rsn, "SI_spare"), kInvalidNode);
  EXPECT_NE(node_by_name(res.rsn, "SI"), kInvalidNode);
  // Provenance: SI_spare maps to nothing, everything else survives.
  EXPECT_EQ(res.node_map[node_by_name(rsn, "SI_spare")], kInvalidNode);
  EXPECT_NE(res.node_map[node_by_name(rsn, "A")], kInvalidNode);
}

TEST(LintFix, KeepsLastPrimaryIn) {
  // The only primary scan-in is unused (the rest of the net is a scan
  // cycle): the guard must keep it, the diagnostic stays.
  const Rsn rsn = parse_rsn_text(
      "rsn\n"
      "decl_in SI\n"
      "decl_seg A len=1 shadow=0 role=instr\n"
      "decl_seg B len=1 shadow=0 role=instr\n"
      "decl_out SO\n"
      "in SI\n"
      "seg A len=1 shadow=0 rep=1 reset=0 role=instr mod=0 lvl=1 in=B sel=1 "
      "cap=0 upd=0\n"
      "seg B len=1 shadow=0 rep=1 reset=0 role=instr mod=0 lvl=1 in=A sel=1 "
      "cap=0 upd=0\n"
      "out SO in=B\n",
      /*validate=*/false);
  ASSERT_TRUE(fires(lint::lint_rsn(rsn), "unused-primary-in"));
  const lint::FixResult res = lint::fix_rsn(rsn);
  const lint::AppliedFix* fix = find_fix(res, "unused-primary-in");
  ASSERT_NE(fix, nullptr);
  EXPECT_EQ(fix->status, lint::FixStatus::kSkipped);
  EXPECT_NE(node_by_name(res.rsn, "SI"), kInvalidNode);
  EXPECT_TRUE(fires(res.residual, "unused-primary-in"));
}

TEST(LintFix, DedupesIdenticalMuxInputs) {
  Rsn rsn = parse_rsn_text(kBrokenFixture, /*validate=*/false);
  const lint::FixResult res = lint::fix_rsn(rsn);
  const lint::AppliedFix* fix = find_fix(res, "mux-identical-inputs");
  ASSERT_NE(fix, nullptr);
  EXPECT_EQ(fix->status, lint::FixStatus::kApplied);
  EXPECT_EQ(fix->kind, lint::FixKind::kDedupeMuxInputs);
  ASSERT_EQ(fix->rewires.size(), 1u);
  EXPECT_EQ(fix->rewires[0].consumer, node_by_name(rsn, "B"));
  EXPECT_EQ(fix->rewires[0].new_driver, node_by_name(rsn, "A"));
  EXPECT_EQ(node_by_name(res.rsn, "M_ID"), kInvalidNode);
  // B's scan input is now A in the repaired network.
  const NodeId b = node_by_name(res.rsn, "B");
  ASSERT_NE(b, kInvalidNode);
  EXPECT_EQ(res.rsn.node(b).scan_in, node_by_name(res.rsn, "A"));
}

TEST(LintFix, FixesWholeFixtureToClean) {
  const Rsn rsn = parse_rsn_text(kBrokenFixture, /*validate=*/false);
  lint::FixOptions opts;
  opts.verify = lint::FixVerify::kMetric;
  const lint::FixResult res = lint::fix_rsn(rsn, opts);
  EXPECT_TRUE(res.changed);
  EXPECT_EQ(res.applied, 4u);   // M_ID, M_CONST, SI_unused, DEAD
  EXPECT_EQ(res.rejected, 0u);
  EXPECT_EQ(res.passes, 2);     // DEAD only dies after M_CONST collapses
  EXPECT_FALSE(any_fixable(res.residual));
  EXPECT_TRUE(res.residual.empty());
  EXPECT_TRUE(res.metric_check_ran);
  EXPECT_TRUE(res.metric_check_ok);
  // The repaired network is valid and serializable.
  res.rsn.validate_or_die();
  const Rsn reparsed = parse_rsn_text(write_rsn_text(res.rsn));
  EXPECT_TRUE(res.rsn.structurally_equal(reparsed));
}

TEST(LintFix, CollapsesOracleProvenConstMux) {
  // The mux address is a contradiction (EN & !EN), constant only to the
  // cone oracle, not syntactically.
  const Rsn rsn = parse_rsn_text(
      "rsn\n"
      "decl_in SI\n"
      "decl_seg A len=1 shadow=0 role=instr\n"
      "decl_seg B len=1 shadow=0 role=instr\n"
      "decl_mux M\n"
      "decl_out SO\n"
      "in SI\n"
      "seg A len=1 shadow=0 rep=1 reset=0 role=instr mod=0 lvl=1 in=SI sel=1 "
      "cap=0 upd=0\n"
      "seg B len=1 shadow=0 rep=1 reset=0 role=instr mod=0 lvl=1 in=SI sel=1 "
      "cap=0 upd=0\n"
      "mux M mod=0 lvl=1 in0=A in1=B addr=(& 0 EN (! 0 EN))\n"
      "out SO in=M\n",
      /*validate=*/false);
  ASSERT_TRUE(fires(lint::lint_rsn(rsn), "const-mux-addr"));
  const lint::FixResult res = lint::fix_rsn(rsn);
  const lint::AppliedFix* fix = find_fix(res, "const-mux-addr");
  ASSERT_NE(fix, nullptr);
  EXPECT_EQ(fix->status, lint::FixStatus::kApplied);
  EXPECT_EQ(node_by_name(res.rsn, "M"), kInvalidNode);
  const NodeId so = node_by_name(res.rsn, "SO");
  ASSERT_NE(so, kInvalidNode);
  // addr stuck at 0 forwards in0 = A.
  EXPECT_EQ(res.rsn.node(so).scan_in, node_by_name(res.rsn, "A"));
}

TEST(LintFix, MuxReferencedByTermIsKept) {
  // The identical-input mux is the successor direction of a select term:
  // bypassing it would orphan hardened-select metadata, so the fix engine
  // must leave it in place.
  const Rsn rsn = parse_rsn_text(
      "rsn\n"
      "decl_in SI\n"
      "decl_seg A len=1 shadow=1 role=instr\n"
      "decl_seg B len=1 shadow=0 role=instr\n"
      "decl_mux M\n"
      "decl_out SO\n"
      "in SI\n"
      "seg A len=1 shadow=1 rep=1 reset=0 role=instr mod=0 lvl=1 in=SI sel=1 "
      "cap=0 upd=0\n"
      "mux M mod=0 lvl=1 in0=A in1=A addr=@A.0.0\n"
      "seg B len=1 shadow=0 rep=1 reset=0 role=instr mod=0 lvl=1 in=M sel=1 "
      "cap=0 upd=0\n"
      "out SO in=B\n"
      "term A M @A.0.0\n",
      /*validate=*/false);
  const lint::FixResult res = lint::fix_rsn(rsn);
  const lint::AppliedFix* fix = find_fix(res, "mux-identical-inputs");
  ASSERT_NE(fix, nullptr);
  EXPECT_EQ(fix->status, lint::FixStatus::kSkipped);
  EXPECT_NE(node_by_name(res.rsn, "M"), kInvalidNode);
  EXPECT_EQ(res.rsn.select_terms().size(), 1u);
}

TEST(LintFix, PrunesUnreachableSelfLoop) {
  const Rsn rsn = parse_rsn_text(
      "rsn\n"
      "decl_in SI\n"
      "decl_seg A len=1 shadow=0 role=instr\n"
      "decl_seg LOOP len=2 shadow=0 role=instr\n"
      "decl_out SO\n"
      "in SI\n"
      "seg A len=1 shadow=0 rep=1 reset=0 role=instr mod=0 lvl=1 in=SI sel=1 "
      "cap=0 upd=0\n"
      "seg LOOP len=2 shadow=0 rep=1 reset=0 role=instr mod=0 lvl=1 in=LOOP "
      "sel=1 cap=0 upd=0\n"
      "out SO in=A\n",
      /*validate=*/false);
  ASSERT_TRUE(fires(lint::lint_rsn(rsn), "unreachable-scan"));
  const lint::FixResult res = lint::fix_rsn(rsn);
  const lint::AppliedFix* fix = find_fix(res, "unreachable-scan");
  ASSERT_NE(fix, nullptr);
  EXPECT_EQ(fix->status, lint::FixStatus::kApplied);
  EXPECT_EQ(node_by_name(res.rsn, "LOOP"), kInvalidNode);
  EXPECT_FALSE(any_fixable(res.residual));
}

TEST(LintFix, DeadSegmentFeedingLiveMuxIsKept) {
  // DEAD has no path to a scan-out itself, but it drives the live mux M:
  // removing it would dangle M's in1, so successor closure must keep it.
  const Rsn rsn = parse_rsn_text(
      "rsn\n"
      "decl_in SI\n"
      "decl_seg A len=1 shadow=1 role=instr\n"
      "decl_seg DEAD len=1 shadow=0 role=instr\n"
      "decl_mux M\n"
      "decl_out SO\n"
      "in SI\n"
      "seg A len=1 shadow=1 rep=1 reset=0 role=instr mod=0 lvl=1 in=SI sel=1 "
      "cap=0 upd=0\n"
      "seg DEAD len=1 shadow=0 rep=1 reset=0 role=instr mod=0 lvl=1 in=SI "
      "sel=1 cap=0 upd=0\n"
      "mux M mod=0 lvl=1 in0=A in1=DEAD addr=@A.0.0\n"
      "out SO in=M\n",
      /*validate=*/false);
  // DEAD reaches SO through the mux, so it is *not* a dead end; instead
  // make it one by checking what the engine does if it were flagged: the
  // fixture where it genuinely dangles is the shadow-reader test below.
  // Here no prune rule fires at all — the net must come back unchanged.
  const lint::FixResult res = lint::fix_rsn(rsn);
  EXPECT_EQ(find_fix(res, "dead-end-scan"), nullptr);
  EXPECT_NE(node_by_name(res.rsn, "DEAD"), kInvalidNode);
}

TEST(LintFix, ShadowReaderKeepsDeadSegment) {
  // CFG is a dead end (no consumer), but the live segment A steers its
  // select from @CFG.0.0: the shadow closure must keep CFG, and the
  // diagnostic must survive as a skipped fix.
  const Rsn rsn = parse_rsn_text(
      "rsn\n"
      "decl_in SI\n"
      "decl_seg A len=1 shadow=0 role=instr\n"
      "decl_seg CFG len=1 shadow=1 role=addr\n"
      "decl_out SO\n"
      "in SI\n"
      "seg A len=1 shadow=0 rep=1 reset=0 role=instr mod=0 lvl=1 in=SI "
      "sel=@CFG.0.0 cap=0 upd=0\n"
      "seg CFG len=1 shadow=1 rep=1 reset=1 role=addr mod=0 lvl=1 in=SI "
      "sel=1 cap=0 upd=0\n"
      "out SO in=A\n",
      /*validate=*/false);
  ASSERT_TRUE(fires(lint::lint_rsn(rsn), "dead-end-scan"));
  const lint::FixResult res = lint::fix_rsn(rsn);
  const lint::AppliedFix* fix = find_fix(res, "dead-end-scan");
  ASSERT_NE(fix, nullptr);
  EXPECT_EQ(fix->status, lint::FixStatus::kSkipped);
  EXPECT_NE(node_by_name(res.rsn, "CFG"), kInvalidNode);
  EXPECT_TRUE(fires(res.residual, "dead-end-scan"));
}

TEST(LintFix, TermOfPrunedSegmentIsDropped) {
  // DEAD carries a select term; pruning DEAD must drop the term too (and
  // the SAT frame check must accept exactly that combination).
  const Rsn rsn = parse_rsn_text(
      "rsn\n"
      "decl_in SI\n"
      "decl_seg A len=1 shadow=1 role=instr\n"
      "decl_seg DEAD len=1 shadow=0 role=instr\n"
      "decl_out SO\n"
      "in SI\n"
      "seg A len=1 shadow=1 rep=1 reset=0 role=instr mod=0 lvl=1 in=SI sel=1 "
      "cap=0 upd=0\n"
      "seg DEAD len=1 shadow=0 rep=1 reset=0 role=instr mod=0 lvl=1 in=SI "
      "sel=1 cap=0 upd=0\n"
      "out SO in=A\n"
      "term DEAD SI @A.0.0\n",
      /*validate=*/false);
  ASSERT_TRUE(fires(lint::lint_rsn(rsn), "dead-end-scan"));
  const lint::FixResult res = lint::fix_rsn(rsn);
  const lint::AppliedFix* fix = find_fix(res, "dead-end-scan");
  ASSERT_NE(fix, nullptr);
  EXPECT_EQ(fix->status, lint::FixStatus::kApplied);
  ASSERT_EQ(fix->removed_terms.size(), 1u);
  EXPECT_EQ(node_by_name(res.rsn, "DEAD"), kInvalidNode);
  EXPECT_TRUE(res.rsn.select_terms().empty());
}

// --- idempotence and verification -------------------------------------------

TEST(LintFix, FixIsIdempotent) {
  const Rsn rsn = parse_rsn_text(kBrokenFixture, /*validate=*/false);
  const lint::FixResult once = lint::fix_rsn(rsn);
  ASSERT_TRUE(once.changed);
  const lint::FixResult twice = lint::fix_rsn(once.rsn);
  EXPECT_FALSE(twice.changed);
  EXPECT_EQ(twice.applied, 0u);
  EXPECT_TRUE(once.rsn.structurally_equal(twice.rsn));
}

TEST(LintFix, SatVerificationRejectsMiswiredRewrite) {
  const Rsn rsn = parse_rsn_text(kBrokenFixture, /*validate=*/false);
  const std::uint64_t rejected_before = obs::counter_value("lint.fix.rejected");
  lint::FixOptions opts;
  opts.debug_miswire = 1;
  const lint::FixResult res = lint::fix_rsn(rsn, opts);
  // Every mux bypass is deliberately miswired, so both must be rejected.
  const lint::AppliedFix* dedupe = find_fix(res, "mux-identical-inputs");
  ASSERT_NE(dedupe, nullptr);
  EXPECT_EQ(dedupe->status, lint::FixStatus::kRejected);
  const lint::AppliedFix* collapse = find_fix(res, "const-mux-addr");
  ASSERT_NE(collapse, nullptr);
  EXPECT_EQ(collapse->status, lint::FixStatus::kRejected);
  // The rejected muxes stay in the network and in the residual report.
  EXPECT_NE(node_by_name(res.rsn, "M_ID"), kInvalidNode);
  EXPECT_NE(node_by_name(res.rsn, "M_CONST"), kInvalidNode);
  EXPECT_TRUE(fires(res.residual, "mux-identical-inputs"));
  EXPECT_GE(obs::counter_value("lint.fix.rejected"), rejected_before + 2);
  // And whatever did apply still preserves the fault metric.
  std::string why;
  EXPECT_TRUE(lint::metric_differential_check(rsn, res, &why)) << why;
}

TEST(LintFix, MetricCheckCatchesUnverifiedMiswire) {
  // With verification off the miswired bypass goes through — the
  // differential fault-metric check must catch it, proving the check has
  // teeth (and, by the test above, that SAT verification is what prevents
  // this from ever reaching a caller).
  const Rsn rsn = parse_rsn_text(kBrokenFixture, /*validate=*/false);
  lint::FixOptions opts;
  opts.verify = lint::FixVerify::kOff;
  opts.debug_miswire = 1;
  const lint::FixResult res = lint::fix_rsn(rsn, opts);
  ASSERT_TRUE(res.changed);
  std::string why;
  bool ran = false;
  EXPECT_FALSE(
      lint::metric_differential_check(rsn, res, &why, 400, 512, &ran));
  EXPECT_TRUE(ran);
  EXPECT_FALSE(why.empty());
}

TEST(LintFix, ObsCountersMatchResult) {
  const Rsn rsn = parse_rsn_text(kBrokenFixture, /*validate=*/false);
  const std::uint64_t applied_before = obs::counter_value("lint.fix.applied");
  const std::uint64_t verified_before =
      obs::counter_value("lint.fix.verified");
  const lint::FixResult res = lint::fix_rsn(rsn);
  std::size_t applied_records = 0;
  for (const auto& f : res.fixes)
    if (f.status == lint::FixStatus::kApplied && !f.removed.empty())
      ++applied_records;
  EXPECT_EQ(obs::counter_value("lint.fix.applied") - applied_before,
            applied_records);
  // Default mode verifies every applied rewrite.
  EXPECT_GE(obs::counter_value("lint.fix.verified") - verified_before,
            applied_records);
}

// --- SARIF fix records -------------------------------------------------------

std::string apply_sarif_edits(
    const std::string& source,
    const std::map<std::size_t, lint::SarifFix>& fixes) {
  std::vector<std::string> lines;
  std::istringstream stream(source);
  std::string line;
  while (std::getline(stream, line)) lines.push_back(line);
  std::vector<bool> drop(lines.size() + 1, false);
  std::vector<std::string> replace(lines.size() + 1);
  std::vector<bool> replaced(lines.size() + 1, false);
  for (const auto& [di, fix] : fixes) {
    for (const auto& rep : fix.replacements) {
      EXPECT_GE(rep.line, 1);
      EXPECT_LE(static_cast<std::size_t>(rep.line), lines.size());
      if (rep.line < 1 || static_cast<std::size_t>(rep.line) > lines.size())
        continue;
      if (rep.delete_line) {
        drop[static_cast<std::size_t>(rep.line)] = true;
      } else {
        replace[static_cast<std::size_t>(rep.line)] = rep.text;
        replaced[static_cast<std::size_t>(rep.line)] = true;
      }
    }
  }
  std::string out;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (drop[i + 1]) continue;
    out += replaced[i + 1] ? replace[i + 1] : lines[i];
    out += '\n';
  }
  return out;
}

TEST(LintFix, SarifEditsReproduceRepairedNetwork) {
  RsnSourceMap src_map;
  const std::string source = kBrokenFixture;
  const Rsn rsn = parse_rsn_text(source, /*validate=*/false, &src_map);
  const lint::FixResult res = lint::fix_rsn(rsn);
  const auto fixes = lint::sarif_fix_records(res, rsn, source, src_map);
  // Three of the four applied fixes have initial diagnostics with source
  // lines (the DEAD prune only fires in pass 2, so it has no initial
  // diagnostic and no record).
  EXPECT_EQ(fixes.size(), 3u);
  const std::string edited_text = apply_sarif_edits(source, fixes);
  const Rsn edited = parse_rsn_text(edited_text, /*validate=*/false);
  // The textual edits reproduce pass 1 exactly: every pass-1 defect is
  // gone; DEAD (a pass-2 prune) is still present and still diagnosed.
  const auto diags = lint::lint_rsn(edited);
  EXPECT_FALSE(fires(diags, "mux-identical-inputs"));
  EXPECT_FALSE(fires(diags, "const-mux-addr"));
  EXPECT_FALSE(fires(diags, "unused-primary-in"));
  EXPECT_TRUE(fires(diags, "dead-end-scan"));
  // Re-running the engine on the edited source converges to the same
  // repaired network.
  const lint::FixResult res2 = lint::fix_rsn(edited);
  EXPECT_TRUE(res.rsn.structurally_equal(res2.rsn));
}

TEST(LintFix, SarifFixGoldenFile) {
  RsnSourceMap src_map;
  const std::string source = kBrokenFixture;
  const Rsn rsn = parse_rsn_text(source, /*validate=*/false, &src_map);
  const lint::FixResult res = lint::fix_rsn(rsn);
  lint::SarifArtifact art{"tests/data/lint_fix_broken.rsn", res.initial,
                          rsn.node_names(),
                          lint::sarif_fix_records(res, rsn, source, src_map)};
  const std::string sarif = lint::to_sarif({art});
  EXPECT_NE(sarif.find("\"fixes\": ["), std::string::npos);
  EXPECT_NE(sarif.find("\"deletedRegion\""), std::string::npos);
  EXPECT_NE(sarif.find("\"insertedContent\""), std::string::npos);

  const std::string path =
      std::string(FTRSN_TEST_DATA_DIR) + "/lint_fix_golden.sarif";
  if (std::getenv("FTRSN_REGOLD") != nullptr) {
    ASSERT_TRUE(obs::write_file(path, sarif)) << path;
    return;
  }
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr) << "missing golden file " << path
                        << " (regenerate with FTRSN_REGOLD=1)";
  std::string golden;
  char buf[4096];
  for (std::size_t n; (n = std::fread(buf, 1, sizeof buf, f)) > 0;)
    golden.append(buf, n);
  std::fclose(f);
  EXPECT_EQ(sarif, golden);
}

// --- randomized differential soak -------------------------------------------

itc02::Soc random_soc(Rng& rng, int max_modules) {
  itc02::Soc soc;
  soc.name = "fixfuzz";
  const int modules = 1 + static_cast<int>(rng.next_below(
                              static_cast<std::uint64_t>(max_modules)));
  for (int i = 0; i < modules; ++i) {
    itc02::Module m;
    m.name = strprintf("m%d", i);
    m.parent = (i > 0 && rng.next_below(3) == 0)
                   ? static_cast<int>(
                         rng.next_below(static_cast<std::uint64_t>(i)))
                   : -1;
    const int chains = 1 + static_cast<int>(rng.next_below(3));
    for (int c = 0; c < chains; ++c)
      m.chain_bits.push_back(1 + static_cast<int>(rng.next_below(8)));
    soc.modules.push_back(std::move(m));
  }
  return soc;
}

NodeId random_scan_consumer(const Rsn& rsn, Rng& rng) {
  std::vector<NodeId> eligible;
  for (NodeId id = 0; id < rsn.num_nodes(); ++id) {
    const RsnNode& n = rsn.node(id);
    if ((n.kind == NodeKind::kSegment || n.kind == NodeKind::kPrimaryOut) &&
        n.scan_in != kInvalidNode)
      eligible.push_back(id);
  }
  return eligible[rng.next_below(eligible.size())];
}

/// Injects 1..4 mechanical defects into a healthy SIB network; every
/// injected defect is repairable and its repair restores the original
/// scan semantics.
Rsn inject_defects(Rsn rsn, Rng& rng) {
  bool injected = false;
  while (!injected) {
    if (rng.next_below(2) == 0) {  // identical-input mux
      const NodeId c = random_scan_consumer(rsn, rng);
      const NodeId s = rsn.node(c).scan_in;
      const NodeId m = rsn.add_mux("fz_dup", s, s, rsn.ctrl().enable_input());
      rsn.set_scan_in(c, m);
      injected = true;
    }
    if (rng.next_below(2) == 0) {  // constant-address mux
      const NodeId c = random_scan_consumer(rsn, rng);
      const NodeId s = rsn.node(c).scan_in;
      NodeId other = static_cast<NodeId>(rng.next_below(rsn.num_nodes()));
      if (rsn.node(other).kind == NodeKind::kPrimaryOut) other = s;
      const bool stuck = rng.next_below(2) == 0;
      const NodeId m =
          rsn.add_mux("fz_const", stuck ? other : s, stuck ? s : other,
                      rsn.ctrl().constant(stuck));
      rsn.set_scan_in(c, m);
      injected = true;
    }
    if (rng.next_below(2) == 0) {  // unused primary scan-in
      rsn.add_primary_in("fz_pi");
      injected = true;
    }
    if (rng.next_below(2) == 0) {  // dead-end segment
      const NodeId src = random_scan_consumer(rsn, rng);
      const NodeId d = rsn.add_segment(
          "fz_dead", 1 + static_cast<int>(rng.next_below(4)), src,
          /*has_shadow=*/false, SegRole::kOther);
      rsn.set_select(d, kCtrlTrue);
      injected = true;
    }
  }
  return rsn;
}

TEST(LintFix, RandomizedDifferentialSoak) {
  const int trials = 8 * fix_iters();
  Rng rng(0xF1DE5EED);
  for (int t = 0; t < trials; ++t) {
    const Rsn healthy = itc02::generate_sib_rsn(random_soc(rng, 3));
    const Rsn broken = inject_defects(healthy, rng);
    lint::FixOptions opts;
    opts.verify = lint::FixVerify::kMetric;
    opts.metric_max_nodes = 2000;
    opts.metric_max_faults = 256;
    const lint::FixResult res = lint::fix_rsn(broken, opts);
    ASSERT_TRUE(res.changed) << "trial " << t;
    EXPECT_TRUE(res.metric_check_ok)
        << "trial " << t << ": " << res.metric_check_note;
    EXPECT_EQ(res.rejected, 0u) << "trial " << t;
    EXPECT_FALSE(any_fixable(res.residual)) << "trial " << t;
    // Idempotence on the repaired network.
    const lint::FixResult again = lint::fix_rsn(res.rsn, opts);
    EXPECT_FALSE(again.changed) << "trial " << t;
    EXPECT_TRUE(res.rsn.structurally_equal(again.rsn)) << "trial " << t;
  }
}

TEST(LintFix, SoakSatNeverAcceptsMetricChangingRewrite) {
  // Every bypass is deliberately miswired; whatever survives the SAT layer
  // must still be metric-equivalent — i.e. the SAT proof never accepts a
  // rewrite the differential check would reject.
  const int trials = 8 * fix_iters();
  Rng rng(0x5A7C4ECC);
  for (int t = 0; t < trials; ++t) {
    const Rsn broken =
        inject_defects(itc02::generate_sib_rsn(random_soc(rng, 3)), rng);
    lint::FixOptions opts;
    opts.verify = lint::FixVerify::kSat;
    opts.debug_miswire = 1;
    opts.metric_max_nodes = 2000;
    opts.metric_max_faults = 256;
    const lint::FixResult res = lint::fix_rsn(broken, opts);
    std::string why;
    EXPECT_TRUE(lint::metric_differential_check(broken, res, &why, 2000, 256))
        << "trial " << t << ": " << why;
  }
}

}  // namespace
}  // namespace ftrsn
