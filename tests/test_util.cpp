#include <gtest/gtest.h>

#include <set>

#include "util/common.hpp"

namespace ftrsn {
namespace {

TEST(Util, StrprintfFormats) {
  EXPECT_EQ(strprintf("a%db", 7), "a7b");
  EXPECT_EQ(strprintf("%s/%s", "x", "y"), "x/y");
  EXPECT_EQ(strprintf("%.2f", 1.239), "1.24");
  EXPECT_EQ(strprintf("empty"), "empty");
}

TEST(Util, CheckThrowsLogicError) {
  EXPECT_THROW(FTRSN_CHECK(1 == 2), std::logic_error);
  EXPECT_THROW(FTRSN_CHECK_MSG(false, "boom"), std::logic_error);
  EXPECT_NO_THROW(FTRSN_CHECK(true));
}

TEST(Util, RngDeterministic) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
  bool differs = false;
  Rng a2(42);
  for (int i = 0; i < 100; ++i) differs |= a2.next_u64() != c.next_u64();
  EXPECT_TRUE(differs);
}

TEST(Util, RngBounds) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.next_below(7);
    EXPECT_LT(v, 7u);
    const auto r = rng.next_range(-5, 5);
    EXPECT_GE(r, -5);
    EXPECT_LE(r, 5);
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Util, RngCoversRange) {
  Rng rng(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.next_range(0, 3));
  EXPECT_EQ(seen.size(), 4u);
}

TEST(Util, SplitBasics) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
  const auto kept = split("a,b,,c", ',', /*keep_empty=*/true);
  ASSERT_EQ(kept.size(), 4u);
  EXPECT_EQ(kept[2], "");
  EXPECT_TRUE(split("", ',').empty());
}

TEST(Util, TrimBasics) {
  EXPECT_EQ(trim("  x y \t\n"), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t "), "");
  EXPECT_EQ(trim("abc"), "abc");
}

}  // namespace
}  // namespace ftrsn
