#include <gtest/gtest.h>

#include "fault/accessibility.hpp"
#include "fault/metric.hpp"
#include "itc02/itc02.hpp"
#include "sim/csu_sim.hpp"

namespace ftrsn {
namespace {

Fault fault_at(Forcing::Point p, NodeId node, bool value, int index = 0,
               CtrlRef ctrl = kCtrlInvalid) {
  Fault f;
  f.forcing.point = p;
  f.forcing.node = node;
  f.forcing.value = value;
  f.forcing.index = index;
  f.forcing.ctrl = ctrl;
  return f;
}

// Node ids in make_example_rsn(): 0=SI 1=A 2=B 3=mux1 4=C 5=mux2 6=D 7=SO.
constexpr NodeId kSI = 0, kA = 1, kB = 2, kMux1 = 3, kC = 4, kMux2 = 5,
                 kD = 6;

TEST(Faults, EnumerationCoversExample) {
  const Rsn rsn = make_example_rsn();
  const auto faults = enumerate_faults(rsn);
  // 2 ports (2 sites) + 4 segments (8 sites) + 2 muxes (8 sites) + ctrl
  // nodes (A[0], B[0] atoms, EN&A[0], EN&B[0] gates = 4 sites; EN excluded).
  EXPECT_EQ(faults.size(), 2u * (2 + 8 + 8 + 4));
  for (const Fault& f : faults)
    EXPECT_FALSE(f.describe(rsn).empty());
}

TEST(Faults, EnumerationExcludesEnableAndConstants) {
  const Rsn rsn = make_example_rsn();
  for (const Fault& f : enumerate_faults(rsn)) {
    if (f.forcing.point != Forcing::Point::kCtrlNet) continue;
    const CtrlNode& n = rsn.ctrl().node(f.forcing.ctrl);
    EXPECT_NE(n.op, CtrlOp::kEnable);
    EXPECT_NE(n.op, CtrlOp::kConst);
  }
}

TEST(Access, FaultFreeEverythingAccessible) {
  for (const Rsn& rsn :
       {make_example_rsn(), make_chain_rsn(5, 3),
        itc02::generate_sib_rsn(*itc02::find_soc("u226"))}) {
    const AccessAnalyzer analyzer(rsn);
    const auto acc = analyzer.accessible_fault_free();
    for (NodeId id = 0; id < rsn.num_nodes(); ++id)
      if (rsn.node(id).is_segment())
        EXPECT_TRUE(acc[id]) << rsn.node(id).name;
  }
}

TEST(Access, ChainFaultKillsEverything) {
  const Rsn rsn = make_chain_rsn(4, 2);
  const AccessAnalyzer analyzer(rsn);
  // Any segment-out fault in a pure chain makes every segment inaccessible.
  const Fault f = fault_at(Forcing::Point::kSegmentOut, 2, false);
  const auto acc = analyzer.accessible_under(&f);
  for (NodeId id = 0; id < rsn.num_nodes(); ++id)
    if (rsn.node(id).is_segment()) EXPECT_FALSE(acc[id]);
}

TEST(Access, ExampleStuckCIsBypassable) {
  const Rsn rsn = make_example_rsn();
  const AccessAnalyzer analyzer(rsn);
  const Fault f = fault_at(Forcing::Point::kSegmentOut, kC, true);
  const auto acc = analyzer.accessible_under(&f);
  EXPECT_TRUE(acc[kA]);
  EXPECT_TRUE(acc[kB]);
  EXPECT_FALSE(acc[kC]);  // the faulty segment itself is lost
  EXPECT_TRUE(acc[kD]);
}

TEST(Access, ExampleStuckBIsBypassableViaMux1) {
  const Rsn rsn = make_example_rsn();
  const AccessAnalyzer analyzer(rsn);
  const Fault f = fault_at(Forcing::Point::kSegmentOut, kB, false);
  const auto acc = analyzer.accessible_under(&f);
  EXPECT_TRUE(acc[kA]);
  EXPECT_FALSE(acc[kB]);
  EXPECT_TRUE(acc[kD]);
  // C is reachable through mux1 input 0 (A directly) once A[0] is writable.
  EXPECT_TRUE(acc[kC]);
}

TEST(Access, ExampleStuckAKillsAll) {
  // A is on every path (its output feeds both mux1 inputs' cones).
  const Rsn rsn = make_example_rsn();
  const AccessAnalyzer analyzer(rsn);
  const Fault f = fault_at(Forcing::Point::kSegmentOut, kA, false);
  const auto acc = analyzer.accessible_under(&f);
  EXPECT_FALSE(acc[kA]);
  EXPECT_FALSE(acc[kB]);
  EXPECT_FALSE(acc[kC]);
  EXPECT_FALSE(acc[kD]);
}

TEST(Access, PrimaryPortFaultKillsAll) {
  const Rsn rsn = make_example_rsn();
  const AccessAnalyzer analyzer(rsn);
  const Fault f = fault_at(Forcing::Point::kPrimaryIn, kSI, true);
  const auto acc = analyzer.accessible_under(&f);
  for (NodeId id = 0; id < rsn.num_nodes(); ++id)
    if (rsn.node(id).is_segment()) EXPECT_FALSE(acc[id]);
}

TEST(Access, MuxAddrStuckLocksDirection) {
  const Rsn rsn = make_example_rsn();
  const AccessAnalyzer analyzer(rsn);
  // mux2 address stuck-at-0: C can never be put on the path.
  const Fault f0 = fault_at(Forcing::Point::kMuxAddr, kMux2, false);
  const auto acc0 = analyzer.accessible_under(&f0);
  EXPECT_FALSE(acc0[kC]);
  EXPECT_TRUE(acc0[kA] && acc0[kB] && acc0[kD]);
  // mux2 address stuck-at-1: C is always on the path; everything accessible.
  const Fault f1 = fault_at(Forcing::Point::kMuxAddr, kMux2, true);
  const auto acc1 = analyzer.accessible_under(&f1);
  EXPECT_TRUE(acc1[kA] && acc1[kB] && acc1[kC] && acc1[kD]);
}

TEST(Access, MuxInputFaultKillsOnlyThatDirection) {
  const Rsn rsn = make_example_rsn();
  const AccessAnalyzer analyzer(rsn);
  // mux1 input 1 (the B side) faulty: B lost, rest accessible via input 0.
  const Fault f = fault_at(Forcing::Point::kMuxIn, kMux1, false, 1);
  const auto acc = analyzer.accessible_under(&f);
  EXPECT_TRUE(acc[kA]);
  EXPECT_FALSE(acc[kB]);
  EXPECT_TRUE(acc[kC]);
  EXPECT_TRUE(acc[kD]);
}

TEST(Access, SelectStemStuck0KillsSegment) {
  const Rsn rsn = make_example_rsn();
  const AccessAnalyzer analyzer(rsn);
  const Fault f = fault_at(Forcing::Point::kCtrlNet, kInvalidNode, false, 0,
                           rsn.node(kB).select);
  const auto acc = analyzer.accessible_under(&f);
  EXPECT_FALSE(acc[kB]);
  EXPECT_TRUE(acc[kA]);
  EXPECT_TRUE(acc[kD]);
}

TEST(Access, ShadowAtomStuckLocksMux) {
  Rsn rsn = make_example_rsn();
  const CtrlRef a0 = rsn.ctrl().shadow_bit(kA, 0);
  const AccessAnalyzer analyzer(rsn);
  // A[0] stem stuck-at-0: mux1 permanently bypasses B and B's select (which
  // also depends on A[0]) can never assert, so B is frozen.  C is collateral
  // damage: mux2's address is B's shadow bit, which can no longer be written.
  const Fault f = fault_at(Forcing::Point::kCtrlNet, kInvalidNode, false, 0, a0);
  const auto acc = analyzer.accessible_under(&f);
  EXPECT_TRUE(acc[kA]);
  EXPECT_FALSE(acc[kB]);
  EXPECT_FALSE(acc[kC]);
  EXPECT_TRUE(acc[kD]);
}

TEST(Access, SibRsnTopLevelFaultKillsEverything) {
  const Rsn rsn = itc02::generate_sib_rsn(*itc02::find_soc("u226"));
  const AccessAnalyzer analyzer(rsn);
  // Find a top-level module SIB register; its scan-out fault must
  // disconnect the whole network (series top-level chain).
  for (NodeId id = 0; id < rsn.num_nodes(); ++id) {
    const RsnNode& n = rsn.node(id);
    if (n.is_segment() && n.role == SegRole::kSibRegister && n.hier_level == 1) {
      const Fault f = fault_at(Forcing::Point::kSegmentOut, id, false);
      const auto acc = analyzer.accessible_under(&f);
      for (NodeId s = 0; s < rsn.num_nodes(); ++s)
        if (rsn.node(s).is_segment()) EXPECT_FALSE(acc[s]);
      break;
    }
  }
}

TEST(Access, SibRsnChainFaultKillsOnlyChain) {
  const Rsn rsn = itc02::generate_sib_rsn(*itc02::find_soc("u226"));
  const AccessAnalyzer analyzer(rsn);
  // Find an instrument chain wrapped by its own SIB (hier level 2).
  for (NodeId id = 0; id < rsn.num_nodes(); ++id) {
    const RsnNode& n = rsn.node(id);
    if (n.is_segment() && n.role == SegRole::kInstrument && n.hier_level == 2) {
      const Fault f = fault_at(Forcing::Point::kSegmentOut, id, false);
      const auto acc = analyzer.accessible_under(&f);
      int lost = 0;
      for (NodeId s = 0; s < rsn.num_nodes(); ++s)
        if (rsn.node(s).is_segment() && !acc[s]) ++lost;
      EXPECT_EQ(lost, 1);  // only the faulty chain itself
      EXPECT_FALSE(acc[id]);
      break;
    }
  }
}

TEST(Metric, ChainRsnTotallyFragile) {
  const Rsn rsn = make_chain_rsn(6, 4);
  const auto report = compute_fault_tolerance(rsn);
  EXPECT_EQ(report.seg_worst, 0.0);
  EXPECT_EQ(report.bit_worst, 0.0);
  EXPECT_LT(report.seg_avg, 0.35);  // select-stem faults kill one segment
}

TEST(Metric, ExampleRsnWorstIsZero) {
  const Rsn rsn = make_example_rsn();
  const auto report = compute_fault_tolerance(rsn);
  EXPECT_EQ(report.seg_worst, 0.0);  // A / SI / SO / mux2-out are SPOFs
  EXPECT_GT(report.seg_avg, 0.3);
  EXPECT_LT(report.seg_avg, 1.0);
}

TEST(Metric, SibRsnWorstIsZeroPaperClaim) {
  // Table I: worst-case accessibility of every original SIB-based RSN is
  // 0.00 for both bits and segments.
  const Rsn rsn = itc02::generate_sib_rsn(*itc02::find_soc("u226"));
  const auto report = compute_fault_tolerance(rsn);
  EXPECT_EQ(report.seg_worst, 0.0);
  EXPECT_EQ(report.bit_worst, 0.0);
  EXPECT_GT(report.seg_avg, 0.5);
  EXPECT_LT(report.seg_avg, 1.0);
}

TEST(Metric, DistributionKeptWhenRequested) {
  MetricOptions opt;
  opt.keep_distribution = true;
  const auto report = compute_fault_tolerance(make_example_rsn(), opt);
  EXPECT_EQ(report.seg_fraction.size(), report.num_faults);
  EXPECT_EQ(report.bit_fraction.size(), report.num_faults);
  // worst must equal the minimum of the distribution.
  double mn = 1.0;
  for (double v : report.seg_fraction) mn = std::min(mn, v);
  EXPECT_DOUBLE_EQ(mn, report.seg_worst);
}

TEST(Metric, PolarityPairingConsistent) {
  // With distribution kept, sa0/sa1 of data-net faults must be identical.
  MetricOptions opt;
  opt.keep_distribution = true;
  const Rsn rsn = make_example_rsn();
  const auto report = compute_fault_tolerance(rsn, opt);
  const auto faults = enumerate_faults(rsn);
  for (std::size_t i = 1; i < faults.size(); ++i) {
    if (faults[i].forcing.point == Forcing::Point::kSegmentOut &&
        faults[i].forcing.value) {
      EXPECT_DOUBLE_EQ(report.seg_fraction[i], report.seg_fraction[i - 1]);
    }
  }
}

/// Cross-validation: every segment the analyzer reports accessible in the
/// fault-free RSN must be reachable by an actual simulated configuration
/// sequence (spot check on the example network).
TEST(Access, AnalyzerAgreesWithSimulatorOnExample) {
  const Rsn rsn = make_example_rsn();
  CsuSimulator sim(rsn);
  // Reset path contains A, B, D; configuring B[0]=1 adds C.
  auto path = sim.active_path();
  EXPECT_EQ(path.size(), 3u);
  sim.poke_shadow(kB, 0, true);
  path = sim.active_path();
  EXPECT_EQ(path.size(), 4u);
  const AccessAnalyzer analyzer(rsn);
  const auto acc = analyzer.accessible_fault_free();
  for (NodeId seg : path) EXPECT_TRUE(acc[seg]);
}

}  // namespace
}  // namespace ftrsn
