#include <gtest/gtest.h>

#include "fault/metric.hpp"
#include "itc02/itc02.hpp"
#include "sim/csu_sim.hpp"
#include "synth/synth.hpp"

namespace ftrsn {
namespace {

TEST(Synth, ExampleProducesValidRsn) {
  const Rsn original = make_example_rsn();
  const SynthResult r = synthesize_fault_tolerant(original);
  EXPECT_NO_THROW(r.rsn.validate_or_die());
  EXPECT_GT(r.stats.added_muxes, 0);
  // Every edge gets a register unless it is steered by a primary pin
  // (edges whose bootstrap anchor degenerates to the scan-in port).
  EXPECT_LE(r.stats.added_registers, r.stats.added_edges);
  EXPECT_GT(r.stats.added_registers, 0);
  const RsnStats orig_stats = original.stats();
  const RsnStats ft_stats = r.rsn.stats();
  EXPECT_GT(ft_stats.muxes, orig_stats.muxes);
  EXPECT_GT(ft_stats.bits, orig_stats.bits);
}

TEST(Synth, DualPortsPresent) {
  const SynthResult r = synthesize_fault_tolerant(make_example_rsn());
  EXPECT_EQ(r.rsn.primary_ins().size(), 2u);
  EXPECT_EQ(r.rsn.primary_outs().size(), 2u);
}

TEST(Synth, ResetConfigurationPreservesOriginalPath) {
  // Paper: all scan paths configurable in the original RSN remain
  // configurable; the FT reset configuration reproduces the original
  // topology (plus inline address registers).
  const Rsn original = make_example_rsn();
  const SynthResult r = synthesize_fault_tolerant(original);
  CsuSimulator orig_sim(original);
  CsuSimulator ft_sim(r.rsn);
  const auto orig_path = orig_sim.active_path();
  const auto ft_path = ft_sim.active_path();
  // Every original path segment appears on the FT reset path, in order.
  std::size_t pos = 0;
  for (NodeId seg : orig_path) {
    bool found = false;
    for (; pos < ft_path.size(); ++pos) {
      if (ft_path[pos] == seg) {
        found = true;
        ++pos;
        break;
      }
      // Skip inline address registers.
      EXPECT_EQ(r.rsn.node(ft_path[pos]).role, SegRole::kAddressRegister);
    }
    EXPECT_TRUE(found) << "segment " << original.node(seg).name;
  }
}

TEST(Synth, SelectsAreConsistentWithActivePath) {
  // In every configuration reachable below, Select(s) == (s on active path).
  const SynthResult r = synthesize_fault_tolerant(make_example_rsn());
  const Rsn& ft = r.rsn;
  CsuSimulator sim(ft);
  for (int trial = 0; trial < 16; ++trial) {
    // Randomize address registers (trial bits) and check consistency.
    int bit = 0;
    for (NodeId id = 0; id < ft.num_nodes(); ++id) {
      const RsnNode& n = ft.node(id);
      if (n.is_segment() && n.has_shadow && n.length == 1)
        sim.poke_shadow(id, 0, (trial >> (bit++ % 4)) & 1);
    }
    // With duplicated ports, a segment is selected iff it lies on the
    // active path of *either* scan-out port.
    std::vector<bool> on_path(ft.num_nodes(), false);
    for (NodeId out : ft.primary_outs())
      for (NodeId seg : sim.active_path(out)) on_path[seg] = true;
    for (NodeId id = 0; id < ft.num_nodes(); ++id) {
      const RsnNode& n = ft.node(id);
      if (!n.is_segment()) continue;
      // Evaluate the hardened select under the simulator state.
      CsuSimulator& s = sim;
      const bool sel = [&] {
        // use shift of one bit through... simpler: capture semantics; use
        // the simulator's internal evaluation through a probe CSU.
        (void)s;
        const auto atom = [&](const CtrlNode& c) -> bool {
          if (c.op == CtrlOp::kEnable) return true;
          if (c.op == CtrlOp::kPortSel) return sim.port_select();
          return sim.shadow_value(c.seg, c.bit, c.replica);
        };
        return ft.ctrl().eval(n.select, atom);
      }();
      EXPECT_EQ(sel, on_path[id])
          << "trial " << trial << " segment " << n.name;
    }
  }
}

TEST(Synth, SelectTermsRecorded) {
  const SynthResult r = synthesize_fault_tolerant(make_example_rsn());
  EXPECT_FALSE(r.rsn.select_terms().empty());
  for (const auto& st : r.rsn.select_terms()) {
    EXPECT_TRUE(r.rsn.node(st.seg).is_segment());
    EXPECT_NE(st.term, kCtrlInvalid);
  }
}

TEST(Synth, TmrOnOriginalMuxAddresses) {
  const SynthResult r = synthesize_fault_tolerant(make_example_rsn());
  const Rsn& ft = r.rsn;
  int voted = 0;
  for (NodeId id = 0; id < ft.num_nodes(); ++id) {
    if (!ft.node(id).is_mux()) continue;
    const CtrlNode& a = ft.ctrl().node(ft.node(id).addr);
    if (a.op == CtrlOp::kMaj3) ++voted;
  }
  EXPECT_GT(voted, 2);  // original two muxes + all augmenting muxes
}

TEST(Synth, NoTmrOptionKeepsPlainAddresses) {
  SynthOptions opt;
  opt.tmr_addresses = false;
  const SynthResult r = synthesize_fault_tolerant(make_example_rsn(), opt);
  for (NodeId id = 0; id < r.rsn.num_nodes(); ++id) {
    if (!r.rsn.node(id).is_mux()) continue;
    EXPECT_NE(r.rsn.ctrl().node(r.rsn.node(id).addr).op, CtrlOp::kMaj3);
  }
}

TEST(Synth, FaultToleranceImprovesDramatically) {
  // The headline claim of the paper on the example scale: worst-case
  // accessibility goes from 0 to "all but a few segments".
  const Rsn original = make_example_rsn();
  const SynthResult r = synthesize_fault_tolerant(original);
  const auto before = compute_fault_tolerance(original);
  const auto after = compute_fault_tolerance(r.rsn);
  EXPECT_EQ(before.seg_worst, 0.0);
  EXPECT_GT(after.seg_worst, 0.0);
  EXPECT_GT(after.seg_avg, before.seg_avg);
}

TEST(Synth, FaultFreeFtRsnFullyAccessible) {
  const SynthResult r = synthesize_fault_tolerant(make_example_rsn());
  const AccessAnalyzer analyzer(r.rsn);
  const auto acc = analyzer.accessible_fault_free();
  for (NodeId id = 0; id < r.rsn.num_nodes(); ++id)
    if (r.rsn.node(id).is_segment())
      EXPECT_TRUE(acc[id]) << r.rsn.node(id).name;
}

TEST(Synth, U226EndToEnd) {
  const Rsn original = itc02::generate_sib_rsn(*itc02::find_soc("u226"));
  const SynthResult r = synthesize_fault_tolerant(original);
  EXPECT_NO_THROW(r.rsn.validate_or_die());
  const AccessAnalyzer analyzer(r.rsn);
  const auto acc = analyzer.accessible_fault_free();
  for (NodeId id = 0; id < r.rsn.num_nodes(); ++id)
    if (r.rsn.node(id).is_segment())
      EXPECT_TRUE(acc[id]) << r.rsn.node(id).name;
  // Mux ratio lands in the paper's ballpark (several x).
  const double mux_ratio = static_cast<double>(r.rsn.stats().muxes) /
                           static_cast<double>(original.stats().muxes);
  EXPECT_GT(mux_ratio, 1.5);
  EXPECT_LT(mux_ratio, 6.0);
}

}  // namespace
}  // namespace ftrsn
