// Randomized end-to-end fuzzing: random hierarchical SoCs are pushed
// through every stage of the library, checking stage invariants rather
// than concrete numbers.
#include <gtest/gtest.h>

#include "core/flow.hpp"
#include "fault/accessibility.hpp"
#include "io/rsn_text.hpp"
#include "itc02/itc02.hpp"
#include "util/common.hpp"

namespace ftrsn {
namespace {

itc02::Soc random_soc(Rng& rng, int max_modules) {
  itc02::Soc soc;
  soc.name = strprintf("fuzz%llu",
                       static_cast<unsigned long long>(rng.next_u64() % 1000));
  const int modules = 1 + static_cast<int>(rng.next_below(
                              static_cast<std::uint64_t>(max_modules)));
  for (int i = 0; i < modules; ++i) {
    itc02::Module m;
    m.name = strprintf("m%d", i);
    // Nest a third of the modules under an earlier one.
    m.parent = (i > 0 && rng.next_below(3) == 0)
                   ? static_cast<int>(rng.next_below(
                         static_cast<std::uint64_t>(i)))
                   : -1;
    const int chains = 1 + static_cast<int>(rng.next_below(4));
    for (int c = 0; c < chains; ++c)
      m.chain_bits.push_back(1 + static_cast<int>(rng.next_below(20)));
    soc.modules.push_back(std::move(m));
  }
  return soc;
}

TEST(FuzzPipeline, RandomSocsSurviveEveryStage) {
  Rng rng(20260706);
  for (int trial = 0; trial < 12; ++trial) {
    const itc02::Soc soc = random_soc(rng, 6);
    const Rsn rsn = itc02::generate_sib_rsn(soc);
    ASSERT_NO_THROW(rsn.validate_or_die()) << "trial " << trial;

    // Fault-free accessibility must be total.
    const AccessAnalyzer analyzer(rsn);
    const auto acc = analyzer.accessible_fault_free();
    for (NodeId id = 0; id < rsn.num_nodes(); ++id)
      if (rsn.node(id).is_segment())
        ASSERT_TRUE(acc[id]) << "trial " << trial << " " << rsn.node(id).name;

    // Text round trip preserves structure.
    ASSERT_TRUE(rsn.structurally_equal(parse_rsn_text(write_rsn_text(rsn))))
        << "trial " << trial;

    // Full flow: the hardened network is valid, fault-free-complete and
    // strictly more tolerant on both aggregates.
    const FlowResult flow = run_flow(rsn);
    ASSERT_NO_THROW(flow.hardened.validate_or_die()) << "trial " << trial;
    const AccessAnalyzer hardened_analyzer(flow.hardened);
    const auto hacc = hardened_analyzer.accessible_fault_free();
    for (NodeId id = 0; id < flow.hardened.num_nodes(); ++id)
      if (flow.hardened.node(id).is_segment())
        ASSERT_TRUE(hacc[id])
            << "trial " << trial << " " << flow.hardened.node(id).name;
    EXPECT_GE(flow.hardened_metric->seg_avg, flow.original_metric->seg_avg)
        << "trial " << trial;
    EXPECT_GE(flow.hardened_metric->seg_worst, flow.original_metric->seg_worst)
        << "trial " << trial;
    EXPECT_EQ(flow.original_metric->seg_worst, 0.0) << "trial " << trial;
    EXPECT_GT(flow.hardened_metric->seg_worst, 0.5) << "trial " << trial;

    // Overheads are sane ratios.
    EXPECT_GE(flow.overhead.mux, 1.0);
    EXPECT_GE(flow.overhead.bits, 1.0);
    EXPECT_LT(flow.overhead.bits, 3.0);
  }
}

TEST(FuzzPipeline, DeepHierarchies) {
  // Linear nesting up to depth 5: levels and accessibility still hold.
  Rng rng(7);
  itc02::Soc soc;
  soc.name = "deep";
  for (int i = 0; i < 5; ++i) {
    itc02::Module m;
    m.name = strprintf("m%d", i);
    m.parent = i - 1;  // chain nesting
    m.chain_bits = {static_cast<int>(1 + rng.next_below(8)),
                    static_cast<int>(1 + rng.next_below(8))};
    soc.modules.push_back(std::move(m));
  }
  const Rsn rsn = itc02::generate_sib_rsn(soc);
  EXPECT_EQ(rsn.stats().levels, 6);  // depth-5 module, chain SIBs one deeper
  const FlowResult flow = run_flow(rsn);
  EXPECT_EQ(flow.original_metric->seg_worst, 0.0);
  EXPECT_GT(flow.hardened_metric->seg_worst, 0.5);
  EXPECT_GT(flow.hardened_metric->seg_avg, 0.95);
}

TEST(FuzzPipeline, SingleModuleSingleChain) {
  // Degenerate smallest SoC: one module, one chain.
  itc02::Soc soc;
  soc.name = "tiny";
  soc.modules.push_back({"m0", -1, {5}});
  const Rsn rsn = itc02::generate_sib_rsn(soc);
  EXPECT_EQ(rsn.stats().segments, 2);  // SIB register + chain
  const FlowResult flow = run_flow(rsn);
  EXPECT_NO_THROW(flow.hardened.validate_or_die());
  EXPECT_GE(flow.hardened_metric->seg_avg, flow.original_metric->seg_avg);
}

}  // namespace
}  // namespace ftrsn
