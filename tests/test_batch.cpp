// Batch runner suite (ctest -L batch): the sharded multi-network sweep
// must be bit-identical to the serial single-threaded sweep at any pool
// size, and the ThreadPool's nested-submission contract (help-first
// execution, no deadlock at pool size 1, exception propagation through
// nesting) must hold — BatchRunner leans on all of it.
//
// FTRSN_BATCH_SOCS=<comma list> picks the SoCs for the end-to-end
// equivalence test (default u226,d281,g1023 to keep CI fast).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <map>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/batch.hpp"
#include "core/flow.hpp"
#include "fault/metric.hpp"
#include "itc02/itc02.hpp"
#include "util/common.hpp"
#include "util/thread_pool.hpp"

namespace ftrsn {
namespace {

std::vector<std::string> batch_socs() {
  const char* env = std::getenv("FTRSN_BATCH_SOCS");
  std::vector<std::string> socs;
  for (const std::string& name : split(env ? env : "u226,d281,g1023", ','))
    socs.emplace_back(trim(name));
  return socs;
}

// --- nested parallel_for ----------------------------------------------------

// Every (outer, inner) index pair is executed exactly once, at every pool
// size including the degenerate serial pool.  A help-first bug (owner
// waiting on a nested job nobody can run) hangs this test at size 1.
TEST(ThreadPoolNesting, CoversEveryPairExactlyOnceNoDeadlock) {
  constexpr std::size_t kOuter = 7, kInner = 23;
  for (const int threads : {1, 2, 4}) {
    ThreadPool pool(threads);
    std::vector<std::atomic<int>> hits(kOuter * kInner);
    for (auto& h : hits) h.store(0);
    pool.parallel_for(kOuter, 1, [&](int, std::size_t ob, std::size_t oe) {
      for (std::size_t o = ob; o < oe; ++o) {
        pool.parallel_for(kInner, 4,
                          [&](int, std::size_t ib, std::size_t ie) {
                            for (std::size_t i = ib; i < ie; ++i)
                              hits[o * kInner + i].fetch_add(1);
                          });
      }
    });
    for (std::size_t i = 0; i < hits.size(); ++i)
      EXPECT_EQ(hits[i].load(), 1) << "threads=" << threads << " idx=" << i;
  }
}

// Worker ids stay in [0, num_threads()) through nesting, and a nested
// chunk runs under the id of the thread that executes it — two jobs never
// expose the same id concurrently on different threads, so per-worker
// scratch needs no locking even when inner loops steal outer workers.
TEST(ThreadPoolNesting, WorkerIdsStayInRangeAndUnaliased) {
  constexpr int kThreads = 4;
  ThreadPool pool(kThreads);
  std::mutex mu;
  std::map<int, std::thread::id> owner;  // worker id -> thread currently in it
  std::map<int, int> depth;              // worker id -> nesting depth
  std::atomic<bool> ok{true};
  const auto enter = [&](int worker) {
    if (worker < 0 || worker >= kThreads) ok = false;
    std::lock_guard<std::mutex> lock(mu);
    auto it = owner.find(worker);
    if (it == owner.end()) {
      owner[worker] = std::this_thread::get_id();
      depth[worker] = 1;
    } else if (it->second != std::this_thread::get_id()) {
      ok = false;  // same worker id active on two threads at once
    } else {
      ++depth[worker];
    }
  };
  const auto leave = [&](int worker) {
    std::lock_guard<std::mutex> lock(mu);
    if (--depth[worker] == 0) owner.erase(worker);
  };
  pool.parallel_for(16, 1, [&](int outer_w, std::size_t ob, std::size_t oe) {
    enter(outer_w);
    for (std::size_t o = ob; o < oe; ++o) {
      pool.parallel_for(8, 2, [&](int inner_w, std::size_t, std::size_t) {
        enter(inner_w);
        leave(inner_w);
      });
    }
    leave(outer_w);
  });
  EXPECT_TRUE(ok.load());
}

// An exception inside a nested loop propagates out through the outer
// parallel_for (one nesting level per job), and every outer index is still
// attempted first — the attempt-every-chunk contract survives nesting.
TEST(ThreadPoolNesting, FirstExceptionPropagatesThroughNesting) {
  for (const int threads : {1, 4}) {
    ThreadPool pool(threads);
    constexpr std::size_t kOuter = 5;
    std::vector<std::atomic<int>> attempted(kOuter);
    for (auto& a : attempted) a.store(0);
    try {
      pool.parallel_for(kOuter, 1, [&](int, std::size_t ob, std::size_t oe) {
        for (std::size_t o = ob; o < oe; ++o) {
          attempted[o].fetch_add(1);
          pool.parallel_for(3, 1, [&](int, std::size_t ib, std::size_t) {
            if (o == 2 && ib == 1) throw std::runtime_error("inner-boom");
          });
        }
      });
      FAIL() << "expected inner-boom, threads=" << threads;
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "inner-boom") << "threads=" << threads;
    }
    for (std::size_t o = 0; o < kOuter; ++o)
      EXPECT_EQ(attempted[o].load(), 1)
          << "threads=" << threads << " outer=" << o;
    // The pool is still usable after the throwing job.
    std::atomic<int> after{0};
    pool.parallel_for(10, 2, [&](int, std::size_t b, std::size_t e) {
      after.fetch_add(static_cast<int>(e - b));
    });
    EXPECT_EQ(after.load(), 10);
  }
}

// Per-index result slots + fixed-order fold give bit-identical sums at any
// pool size, even with nesting in the mix (the determinism contract the
// metric engine and BatchRunner build on).
TEST(ThreadPoolNesting, SerialFoldIsDeterministicAcrossPoolSizes) {
  constexpr std::size_t kN = 64;
  const auto run = [&](int threads) {
    ThreadPool pool(threads);
    std::vector<double> slot(kN, 0.0);
    pool.parallel_for(kN, 3, [&](int, std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) {
        double inner[8] = {};
        pool.parallel_for(8, 2, [&](int, std::size_t ib, std::size_t ie) {
          for (std::size_t k = ib; k < ie; ++k)
            inner[k] = 1.0 / static_cast<double>(i * 8 + k + 1);
        });
        for (const double v : inner) slot[i] += v;  // fixed inner order
      }
    });
    double sum = 0.0;
    for (const double v : slot) sum += v;  // fixed outer order
    return sum;
  };
  const double serial = run(1);
  for (const int threads : {2, 4, 8})
    EXPECT_EQ(serial, run(threads)) << "threads=" << threads;
}

// --- BatchRunner ------------------------------------------------------------

void expect_flow_identical(const FlowResult& serial, const FlowResult& batch,
                           const std::string& what) {
  ASSERT_EQ(serial.original_metric.has_value(),
            batch.original_metric.has_value())
      << what;
  ASSERT_EQ(serial.hardened_metric.has_value(),
            batch.hardened_metric.has_value())
      << what;
  const auto expect_metric = [&](const FaultToleranceReport& a,
                                 const FaultToleranceReport& b) {
    EXPECT_EQ(a.num_faults, b.num_faults) << what;
    EXPECT_EQ(a.seg_worst, b.seg_worst) << what;
    EXPECT_EQ(a.seg_avg, b.seg_avg) << what;
    EXPECT_EQ(a.bit_worst, b.bit_worst) << what;
    EXPECT_EQ(a.bit_avg, b.bit_avg) << what;
    EXPECT_EQ(a.worst_fault_index, b.worst_fault_index) << what;
  };
  if (serial.original_metric)
    expect_metric(*serial.original_metric, *batch.original_metric);
  if (serial.hardened_metric)
    expect_metric(*serial.hardened_metric, *batch.hardened_metric);
  EXPECT_EQ(serial.augment_cost, batch.augment_cost) << what;
  EXPECT_EQ(serial.augment_edges, batch.augment_edges) << what;
  EXPECT_EQ(serial.hardened_stats.segments, batch.hardened_stats.segments)
      << what;
  EXPECT_EQ(serial.hardened_stats.muxes, batch.hardened_stats.muxes) << what;
  EXPECT_EQ(serial.hardened_stats.bits, batch.hardened_stats.bits) << what;
}

// The headline equivalence: a sharded sweep over real SoCs reproduces the
// serial single-threaded sweep bit for bit at 1, 2 and 8 threads, results
// in input order.
TEST(BatchRunner, SocSweepBitIdenticalAtAnyThreadCount) {
  const std::vector<std::string> socs = batch_socs();
  FlowOptions serial_opt;
  serial_opt.metric_threads = 1;
  std::vector<FlowResult> serial;
  for (const std::string& name : socs)
    serial.push_back(run_soc_flow(name, serial_opt));

  for (const int threads : {1, 2, 8}) {
    BatchOptions bopt;
    bopt.threads = threads;
    BatchRunner runner(bopt);
    const BatchResult res = runner.run_soc_flows(socs);
    ASSERT_EQ(res.flows.size(), socs.size());
    EXPECT_EQ(res.threads, ThreadPool::resolve_threads(threads));
    for (std::size_t i = 0; i < socs.size(); ++i)
      expect_flow_identical(
          serial[i], res.flows[i],
          socs[i] + " threads=" + std::to_string(threads));
  }
}

// Results land in input-order slots regardless of schedule, named flows
// with explicit networks work, and the runner survives repeated use.
TEST(BatchRunner, ExplicitNetworksKeepInputOrder) {
  const auto soc = itc02::find_soc("u226");
  ASSERT_TRUE(soc.has_value());
  const Rsn rsn = itc02::generate_sib_rsn(*soc);
  BatchOptions bopt;
  bopt.threads = 4;
  BatchRunner runner(bopt);
  for (int round = 0; round < 2; ++round) {
    std::vector<BatchFlow> flows;
    for (int i = 0; i < 5; ++i) {
      BatchFlow flow;
      flow.name = "copy" + std::to_string(i);
      flow.rsn = rsn;
      flow.options.evaluate_original = false;
      // Distinct bmc budgets mark the slots so a shuffled result would show.
      flow.options.bmc_spotcheck = i;
      flows.push_back(std::move(flow));
    }
    const BatchResult res = runner.run_flows(std::move(flows));
    ASSERT_EQ(res.flows.size(), 5u);
    for (int i = 0; i < 5; ++i) {
      EXPECT_EQ(res.flows[i].bmc_checked, i) << "round=" << round;
      EXPECT_FALSE(res.flows[i].original_metric.has_value());
      ASSERT_TRUE(res.flows[i].hardened_metric.has_value());
      expect_flow_identical(res.flows[0], res.flows[i],
                            "copy" + std::to_string(i));
    }
  }
}

// A throwing flow (unknown SoC) surfaces as run_flows' exception after
// every other flow has been attempted; good slots are filled.
TEST(BatchRunner, FlowExceptionPropagatesAfterAllAttempted) {
  std::vector<BatchFlow> flows;
  for (const char* name : {"u226", "nosuchsoc", "d281"}) {
    BatchFlow flow;
    flow.soc = name;
    flow.options.evaluate_original = false;
    flows.push_back(std::move(flow));
  }
  BatchOptions bopt;
  bopt.threads = 2;
  BatchRunner runner(bopt);
  EXPECT_THROW(runner.run_flows(std::move(flows)), std::exception);
}

}  // namespace
}  // namespace ftrsn
