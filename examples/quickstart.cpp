// Quickstart: synthesize a fault-tolerant version of the paper's running
// example RSN (Fig. 2) and quantify the improvement.
//
//   build/examples/example_quickstart
#include <cstdio>

#include "access/planner.hpp"
#include "core/flow.hpp"

using namespace ftrsn;

int main() {
  // The example network of the paper: segments A, B, C, D behind two scan
  // multiplexers; A, B, D are on the active path after reset.
  const Rsn original = make_example_rsn();

  std::printf("Synthesis flow (paper Fig. 1)\n");
  std::printf("  1. dataflow graph + connectivity requirements\n");
  std::printf("  2. ILP-based connectivity augmentation\n");
  std::printf("  3. final synthesis: muxes, select hardening, TMR, ports\n\n");

  const FlowResult flow = run_flow(original);

  const RsnStats& os = flow.original_stats;
  const RsnStats& hs = flow.hardened_stats;
  std::printf("original RSN:        %d segments, %d muxes, %lld bits\n",
              os.segments, os.muxes, os.bits);
  std::printf("fault-tolerant RSN:  %d segments, %d muxes, %lld bits "
              "(+%d muxes, +%d address registers)\n\n",
              hs.segments, hs.muxes, hs.bits, flow.synth_stats.added_muxes,
              flow.synth_stats.added_registers);

  const auto& before = *flow.original_metric;
  const auto& after = *flow.hardened_metric;
  std::printf("fault tolerance (fraction of segments accessible under any\n"
              "single stuck-at fault, %zu / %zu faults considered):\n",
              before.num_faults, after.num_faults);
  std::printf("  original:        worst %.2f   average %.3f\n",
              before.seg_worst, before.seg_avg);
  std::printf("  fault-tolerant:  worst %.2f   average %.3f\n\n",
              after.seg_worst, after.seg_avg);

  std::printf("hardware overhead:   mux x%.2f, bits x%.2f, area x%.2f\n\n",
              flow.overhead.mux, flow.overhead.bits, flow.overhead.area);

  // Access planning: the CSU series that brings the bypassed segment C
  // onto the active scan path (paper §II-B).
  const NodeId seg_c = 4;
  const AccessPlan plan = plan_access(original, seg_c);
  std::printf("access plan for C: %zu CSU operation(s), %lld shift cycles; "
              "validates in the simulator: %s\n",
              plan.csu_streams.size(), plan.shift_cycles(),
              validate_plan(original, plan) ? "yes" : "NO");
  return 0;
}
