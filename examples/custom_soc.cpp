// Define a custom SoC (modules with scan chains), generate its SIB-based
// RSN, synthesize the fault-tolerant variant, and export both networks in
// the .rsn text format.
//
//   build/examples/example_custom_soc [output-directory]
#include <cstdio>
#include <string>

#include "core/flow.hpp"
#include "io/rsn_text.hpp"
#include "itc02/itc02.hpp"

using namespace ftrsn;

int main(int argc, char** argv) {
  const std::string out_dir = argc > 1 ? argv[1] : "/tmp";

  // A small hierarchical SoC: a top-level controller, one nested
  // accelerator with three scan chains, and a memory wrapper.
  itc02::Soc soc;
  soc.name = "demo_soc";
  soc.modules.push_back({"ctrl", -1, {12, 8}});
  soc.modules.push_back({"accel", 0, {32, 32, 17}});  // nested inside ctrl
  soc.modules.push_back({"mem", -1, {64}});

  const Rsn rsn = itc02::generate_sib_rsn(soc);
  const RsnStats st = rsn.stats();
  std::printf("%s: %d segments, %d muxes, %lld scan bits, %d hierarchy "
              "levels\n",
              soc.name.c_str(), st.segments, st.muxes, st.bits, st.levels);

  FlowOptions opt;
  const FlowResult flow = run_flow(rsn, opt);
  std::printf("accessibility: original worst %.2f avg %.3f -> "
              "fault-tolerant worst %.3f avg %.4f\n",
              flow.original_metric->seg_worst, flow.original_metric->seg_avg,
              flow.hardened_metric->seg_worst, flow.hardened_metric->seg_avg);
  std::printf("overhead: mux x%.2f bits x%.2f area x%.2f\n", flow.overhead.mux,
              flow.overhead.bits, flow.overhead.area);

  const std::string orig_path = out_dir + "/demo_soc.rsn";
  const std::string ft_path = out_dir + "/demo_soc_ft.rsn";
  save_rsn(rsn, orig_path);
  save_rsn(flow.hardened, ft_path);
  std::printf("wrote %s and %s\n", orig_path.c_str(), ft_path.c_str());

  // Round-trip check: the parser restores the exact structure.
  const Rsn reloaded = load_rsn(ft_path);
  std::printf("round-trip %s\n",
              flow.hardened.structurally_equal(reloaded) ? "OK" : "FAILED");
  return 0;
}
