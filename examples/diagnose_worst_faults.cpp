// Diagnosis helper: rank the stuck-at faults of an RSN by how much
// accessibility they destroy — the faults a bring-up team should worry
// about first, and the direct consumers of the paper's fault-tolerance
// metric.
//
//   build/examples/example_diagnose_worst_faults [soc-name] [top-k]
#include <algorithm>
#include <cstdio>
#include <string>

#include "fault/metric_engine.hpp"
#include "itc02/itc02.hpp"
#include "synth/synth.hpp"

using namespace ftrsn;

namespace {

void report(const char* title, const Rsn& rsn, int top_k) {
  MetricEngineOptions opt;
  opt.metric.keep_distribution = true;
  const FaultMetricEngine engine(rsn);
  const FaultToleranceReport rep = engine.evaluate(opt);
  const auto faults = enumerate_faults(rsn);

  std::vector<std::size_t> order(faults.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return rep.seg_fraction[a] < rep.seg_fraction[b];
  });

  std::printf("%s: %zu faults, worst %.3f, average %.4f\n", title,
              rep.num_faults, rep.seg_worst, rep.seg_avg);
  for (int k = 0; k < top_k && static_cast<std::size_t>(k) < order.size(); ++k) {
    const std::size_t i = order[static_cast<std::size_t>(k)];
    std::printf("  %2d. %-45.45s  segments %.3f  bits %.3f\n", k + 1,
                faults[i].describe(rsn).c_str(), rep.seg_fraction[i],
                rep.bit_fraction[i]);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const std::string soc_name = argc > 1 ? argv[1] : "u226";
  const int top_k = argc > 2 ? std::stoi(argv[2]) : 8;
  const auto soc = itc02::find_soc(soc_name);
  if (!soc) {
    std::fprintf(stderr, "unknown SoC '%s'\n", soc_name.c_str());
    return 1;
  }
  const Rsn original = itc02::generate_sib_rsn(*soc);
  report("original SIB-based RSN", original, top_k);
  const SynthResult synth = synthesize_fault_tolerant(original);
  report("fault-tolerant RSN", synth.rsn, top_k);
  return 0;
}
