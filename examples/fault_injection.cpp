// Fault-injection walkthrough: break a scan segment of the fault-tolerant
// example RSN inside the cycle-accurate CSU simulator, then demonstrate
// that the analyzer's verdict matches what the simulated hardware can
// actually still do (configure a detour and access another segment).
//
//   build/examples/example_fault_injection
#include <cstdio>

#include "fault/metric_engine.hpp"
#include "sim/csu_sim.hpp"
#include "synth/synth.hpp"

using namespace ftrsn;

int main() {
  const Rsn original = make_example_rsn();
  const SynthResult synth = synthesize_fault_tolerant(original);
  const Rsn& ft = synth.rsn;
  const auto names = ft.node_names();

  // Break segment A's scan output (stuck-at-0): in the ORIGINAL network
  // this single fault disconnects every segment.
  NodeId seg_a = kInvalidNode;
  for (NodeId id = 0; id < ft.num_nodes(); ++id)
    if (ft.node(id).name == "A") seg_a = id;
  Fault fault;
  fault.forcing.point = Forcing::Point::kSegmentOut;
  fault.forcing.node = seg_a;
  fault.forcing.value = false;

  const FaultMetricEngine orig_engine(original);
  const auto orig_acc = orig_engine.accessible_under_set({fault});
  int orig_alive = 0;
  for (NodeId id = 0; id < original.num_nodes(); ++id)
    if (original.node(id).is_segment() && orig_acc[id]) ++orig_alive;
  std::printf("fault: %s\n", fault.describe(ft).c_str());
  std::printf("original RSN:       %d of 4 segments still accessible\n",
              orig_alive);

  const FaultMetricEngine ft_engine(ft);
  const auto ft_acc = ft_engine.accessible_under_set({fault});
  std::printf("fault-tolerant RSN: still accessible:");
  for (NodeId id = 0; id < ft.num_nodes(); ++id)
    if (ft.node(id).is_segment() && ft_acc[id] &&
        ft.node(id).role != SegRole::kAddressRegister)
      std::printf(" %s", names[id].c_str());
  std::printf("\n\n");

  // Now prove it in the simulator: inject the fault, then read segment B
  // through the detour (B's second scan-in edge comes from the scan-in
  // port via a pin-steered mux).
  CsuSimulator sim(ft);
  sim.add_forcing(fault.forcing);

  NodeId seg_b = kInvalidNode;
  for (NodeId id = 0; id < ft.num_nodes(); ++id)
    if (ft.node(id).name == "B") seg_b = id;
  sim.set_data_in(seg_b, {1, 0, 1});

  // Find the primary detour pin that routes B onto the active path (the
  // synthesizer allocates one pin per root-anchored augmenting edge; pin 0
  // selects the duplicated scan-in port).
  auto on_path = [&](NodeId seg) {
    for (NodeId s : sim.active_path())
      if (s == seg) return true;
    return false;
  };
  for (int pin = 1; pin < 16 && !on_path(seg_b); ++pin) {
    for (int k = 1; k < 16; ++k) sim.set_port_select(k, false);
    sim.set_port_select(pin, true);
  }

  const auto path = sim.active_path();
  std::printf("simulated active path with detour pins asserted:");
  for (NodeId seg : path) std::printf(" %s", names[seg].c_str());
  bool b_on_path = false;
  for (NodeId seg : path) b_on_path |= seg == seg_b;
  std::printf("\n");

  if (b_on_path) {
    const int bits = sim.active_path_bits();
    const CsuResult csu =
        sim.csu(std::vector<std::uint8_t>(static_cast<std::size_t>(bits), 0));
    // Locate B's captured bits in the out-stream: they appear after the
    // bits of every segment downstream of B on the path.
    int after_b = 0;
    bool seen_b = false;
    for (NodeId seg : path) {
      if (seg == seg_b) seen_b = true;
      else if (seen_b) after_b += ft.node(seg).length;
    }
    std::printf("B captured [1 0 1]; read back through the detour: [%d %d %d]\n",
                int(csu.out_bits[static_cast<std::size_t>(after_b + 2)]),
                int(csu.out_bits[static_cast<std::size_t>(after_b + 1)]),
                int(csu.out_bits[static_cast<std::size_t>(after_b)]));
    std::printf("the faulty network still reads instrument data that the\n"
                "original network would have lost entirely.\n");
  } else {
    std::printf("B not on the reset-path detour; a CSU sequence writing the\n"
                "detour address registers would bring it on path (see the\n"
                "analyzer verdict above).\n");
  }
  return 0;
}
