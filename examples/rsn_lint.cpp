// rsn-lint — static analysis of .rsn networks from the command line.
//
//   example_rsn_lint [options] <in.rsn> [<in2.rsn> ...]
//
//   --json               machine-readable report (one JSON object per file)
//   --sarif              SARIF 2.1.0 log over all files (for code hosts)
//   --ft                 enable the post-synthesis fault-tolerance rules
//   --disable=ID         turn a rule off (repeatable)
//   --severity=ID:LEVEL  override a rule's severity (error|warning|info)
//   --cone-backend=B     how cone queries are decided: tristate|sat|auto
//   --cone-max-atoms=N   auto backend: enumerate up to N free atoms (def. 10)
//   --fix                auto-repair fixable findings, rewrite the file
//   --fix-dry-run        run the repair engine, report, write nothing
//   --fix-out=PATH       write the repaired network to PATH (one input file)
//   --fix-verify=V       rewrite verification: sat (default) | metric | off
//   --lint-stats         print analysis counters per file (to stderr)
//   --list-rules         print the rule catalog and exit
//   --trace=PATH         write a Chrome trace-event JSON of the run
//   --report=PATH        write the obs run-report JSON of the run
//
// FTRSN_TRACE / FTRSN_REPORT provide the same outputs from the environment
// ("1" selects the default rsn_lint_{trace,report}.json names).
//
// In fix mode the text/JSON reports cover the *residual* diagnostics of the
// repaired network; --sarif reports the *initial* diagnostics with SARIF
// `fix` objects attached to the repaired ones, which is the format code
// hosts expect.  --fix only rewrites a file when at least one fix applied.
//
// Exit status: 0 = no error-severity findings (after repair, in fix mode),
// 1 = at least one error, 2 = usage or file/parse failure.  Files are
// loaded without the structural validation gate (load_rsn(path, false)) so
// deliberately broken networks can be analyzed instead of aborting the
// parse.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "io/rsn_text.hpp"
#include "lint/cone_oracle.hpp"
#include "lint/fix.hpp"
#include "lint/lint.hpp"
#include "lint/sarif.hpp"
#include "obs/obs.hpp"

using namespace ftrsn;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: rsn_lint [--json] [--sarif] [--ft] [--disable=ID]\n"
               "                [--severity=ID:error|warning|info]\n"
               "                [--cone-backend=tristate|sat|auto]\n"
               "                [--cone-max-atoms=N] [--lint-stats]\n"
               "                [--fix | --fix-dry-run] [--fix-out=PATH]\n"
               "                [--fix-verify=sat|metric|off]\n"
               "                [--trace=PATH] [--report=PATH]\n"
               "                [--list-rules] <in.rsn> [...]\n");
  return 2;
}

const char* stage_name(lint::RuleStage s) {
  switch (s) {
    case lint::RuleStage::kStructure: return "structure";
    case lint::RuleStage::kControl: return "control";
    case lint::RuleStage::kSynthesis: return "synthesis";
    case lint::RuleStage::kFaultTolerance: return "fault-tolerance";
    case lint::RuleStage::kDataflow: return "dataflow";
    case lint::RuleStage::kAugment: return "augment";
  }
  return "?";
}

int list_rules() {
  for (const lint::RuleInfo& r : lint::LintRunner::rules())
    std::printf("%-26s %-8s %-15s %-16s %s\n", r.id.c_str(),
                lint::severity_name(r.severity), stage_name(r.stage),
                r.paper_ref.c_str(), r.summary.c_str());
  return 0;
}

bool parse_backend(const std::string& name, lint::LintOptions& opts) {
  if (name == "tristate")
    opts.cone_backend = lint::ConeBackend::kTristate;
  else if (name == "sat")
    opts.cone_backend = lint::ConeBackend::kSat;
  else if (name == "auto")
    opts.cone_backend = lint::ConeBackend::kAuto;
  else
    return false;
  return true;
}

bool parse_severity(const std::string& spec, lint::LintOptions& opts) {
  const std::size_t colon = spec.find(':');
  if (colon == std::string::npos) return false;
  const std::string id = spec.substr(0, colon);
  const std::string level = spec.substr(colon + 1);
  if (level == "error")
    opts.severity[id] = lint::Severity::kError;
  else if (level == "warning")
    opts.severity[id] = lint::Severity::kWarning;
  else if (level == "info")
    opts.severity[id] = lint::Severity::kInfo;
  else
    return false;
  return true;
}

bool parse_fix_verify(const std::string& name, lint::FixVerify& out) {
  if (name == "sat")
    out = lint::FixVerify::kSat;
  else if (name == "metric")
    out = lint::FixVerify::kMetric;
  else if (name == "off")
    out = lint::FixVerify::kOff;
  else
    return false;
  return true;
}

/// True if the writer can serialize the network: every node reference the
/// text format prints by name must resolve (write_rsn_text has no spelling
/// for a dangling reference, so such networks are reported, not written).
bool writable(const Rsn& rsn) {
  for (NodeId id = 0; id < rsn.num_nodes(); ++id) {
    const RsnNode& n = rsn.node(id);
    if (n.kind == NodeKind::kSegment || n.kind == NodeKind::kPrimaryOut) {
      if (n.scan_in == kInvalidNode) return false;
    } else if (n.is_mux()) {
      if (n.mux_in[0] == kInvalidNode || n.mux_in[1] == kInvalidNode)
        return false;
    }
  }
  return true;
}

const char* fix_status_name(lint::FixStatus s) {
  switch (s) {
    case lint::FixStatus::kApplied: return "applied";
    case lint::FixStatus::kRejected: return "rejected";
    case lint::FixStatus::kSkipped: return "skipped";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  lint::LintOptions opts;
  bool json = false;
  bool sarif = false;
  bool stats = false;
  bool fix = false;
  bool fix_dry = false;
  std::string fix_out;
  lint::FixVerify fix_verify = lint::FixVerify::kSat;
  obs::EnvConfig obs_cfg = obs::init_from_env("rsn_lint");
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--sarif") {
      sarif = true;
    } else if (arg == "--ft") {
      opts.ft_rules = true;
    } else if (arg == "--list-rules") {
      return list_rules();
    } else if (arg.rfind("--disable=", 0) == 0) {
      opts.enabled[arg.substr(10)] = false;
    } else if (arg.rfind("--severity=", 0) == 0) {
      if (!parse_severity(arg.substr(11), opts)) return usage();
    } else if (arg.rfind("--cone-backend=", 0) == 0) {
      if (!parse_backend(arg.substr(15), opts)) return usage();
    } else if (arg.rfind("--cone-max-atoms=", 0) == 0) {
      char* end = nullptr;
      const long n = std::strtol(arg.c_str() + 17, &end, 10);
      if (end == nullptr || *end != '\0' || n < 0) return usage();
      opts.cone_max_atoms = static_cast<std::size_t>(n);
    } else if (arg == "--fix") {
      fix = true;
    } else if (arg == "--fix-dry-run") {
      fix_dry = true;
    } else if (arg.rfind("--fix-out=", 0) == 0) {
      fix_out = arg.substr(10);
    } else if (arg.rfind("--fix-verify=", 0) == 0) {
      if (!parse_fix_verify(arg.substr(13), fix_verify)) return usage();
    } else if (arg == "--lint-stats") {
      stats = true;
    } else if (arg.rfind("--trace=", 0) == 0) {
      obs_cfg.trace_path = arg.substr(8);
      obs::enable(true);
    } else if (arg.rfind("--report=", 0) == 0) {
      obs_cfg.report_path = arg.substr(9);
      obs::enable(true);
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) return usage();
  const bool fix_mode = fix || fix_dry || !fix_out.empty();
  if (fix && fix_dry) return usage();
  if (!fix_out.empty() && files.size() != 1) {
    std::fprintf(stderr, "rsn_lint: --fix-out takes exactly one input file\n");
    return 2;
  }

  bool any_errors = false;
  std::vector<lint::SarifArtifact> sarif_artifacts;
  for (const std::string& path : files) {
    Rsn rsn;
    std::string source_text;
    RsnSourceMap src_map;
    try {
      if (fix_mode) {
        std::ifstream in(path, std::ios::binary);
        if (!in) throw std::runtime_error("cannot open file");
        std::ostringstream buf;
        buf << in.rdbuf();
        source_text = buf.str();
        rsn = parse_rsn_text(source_text, /*validate=*/false, &src_map);
      } else {
        rsn = load_rsn(path, /*validate=*/false);
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s: cannot load: %s\n", path.c_str(), e.what());
      return 2;
    }

    if (fix_mode) {
      lint::FixOptions fopts;
      fopts.lint = opts;
      fopts.verify = fix_verify;
      const lint::FixResult result = lint::fix_rsn(rsn, fopts);
      for (const lint::AppliedFix& f : result.fixes)
        std::fprintf(stderr, "%s: fix[%s] %s '%s': %s\n", path.c_str(),
                     fix_status_name(f.status), f.rule.c_str(),
                     f.node < rsn.num_nodes() ? rsn.node(f.node).name.c_str()
                                              : "?",
                     f.note.c_str());
      if (result.metric_check_ran)
        std::fprintf(stderr, "%s: fix: metric differential check %s (%s)\n",
                     path.c_str(), result.metric_check_ok ? "passed" : "FAILED",
                     result.metric_check_note.c_str());
      std::fprintf(stderr, "%s: fix: %zu applied, %zu rejected, %d pass(es)\n",
                   path.c_str(), result.applied, result.rejected,
                   result.passes);
      const auto res_names = result.rsn.node_names();
      const auto res_counts = lint::count_by_severity(result.residual);
      if (sarif) {
        sarif_artifacts.push_back(
            {path, result.initial, rsn.node_names(),
             lint::sarif_fix_records(result, rsn, source_text, src_map)});
      } else if (json) {
        std::printf("%s\n",
                    lint::to_json(result.residual, res_names).c_str());
      } else {
        std::fputs(lint::to_text(result.residual, res_names).c_str(), stdout);
        std::printf("%s: after fix: %d error(s), %d warning(s), %d info(s)\n",
                    path.c_str(),
                    res_counts[static_cast<int>(lint::Severity::kError)],
                    res_counts[static_cast<int>(lint::Severity::kWarning)],
                    res_counts[static_cast<int>(lint::Severity::kInfo)]);
      }
      if (!fix_dry && result.changed) {
        if (!writable(result.rsn)) {
          std::fprintf(stderr,
                       "%s: fix: repaired network retains dangling references "
                       "(broken input); refusing to write\n",
                       path.c_str());
          return 2;
        }
        const std::string out_path = fix_out.empty() ? path : fix_out;
        save_rsn(result.rsn, out_path);
        std::fprintf(stderr, "%s: fix: wrote %s\n", path.c_str(),
                     out_path.c_str());
      } else if (!fix_dry && !fix_out.empty()) {
        // Nothing changed but an explicit output was requested: emit the
        // (identical) network so downstream steps always find the file.
        if (!writable(result.rsn)) {
          std::fprintf(stderr, "%s: fix: network not serializable\n",
                       path.c_str());
          return 2;
        }
        save_rsn(result.rsn, fix_out);
      }
      any_errors = any_errors || lint::has_errors(result.residual);
      continue;
    }

    if (stats) lint::reset_lint_stats();
    const auto diags = lint::lint_rsn(rsn, opts);
    if (stats) {
      const lint::LintStats& s = lint::lint_stats();
      std::fprintf(stderr,
                   "%s: lint-stats: sat=%llu tristate=%llu cache-hits=%llu "
                   "incremental-updates=%llu full-recomputes=%llu\n",
                   path.c_str(),
                   static_cast<unsigned long long>(s.cones_solved_sat),
                   static_cast<unsigned long long>(s.cones_solved_tristate),
                   static_cast<unsigned long long>(s.cache_hits),
                   static_cast<unsigned long long>(s.incremental_updates),
                   static_cast<unsigned long long>(s.full_recomputes));
    }
    const auto counts = lint::count_by_severity(diags);
    const auto names = rsn.node_names();
    if (sarif) {
      sarif_artifacts.push_back({path, diags, names, {}});
    } else if (json) {
      std::printf("%s\n", lint::to_json(diags, names).c_str());
    } else {
      std::fputs(lint::to_text(diags, names).c_str(), stdout);
      std::printf("%s: %d error(s), %d warning(s), %d info(s)\n",
                  path.c_str(),
                  counts[static_cast<int>(lint::Severity::kError)],
                  counts[static_cast<int>(lint::Severity::kWarning)],
                  counts[static_cast<int>(lint::Severity::kInfo)]);
    }
    any_errors = any_errors || lint::has_errors(diags);
  }
  if (sarif) std::fputs(lint::to_sarif(sarif_artifacts).c_str(), stdout);
  if (!obs_cfg.trace_path.empty()) obs::write_trace(obs_cfg.trace_path);
  if (!obs_cfg.report_path.empty()) obs::write_report(obs_cfg.report_path);
  return any_errors ? 1 : 0;
}
