// Command-line front end for the library: inspect, analyze, synthesize and
// export RSNs in the .rsn text format.
//
//   example_rsn_tool info   <in.rsn>             structural statistics
//   example_rsn_tool metric <in.rsn>             fault-tolerance metric
//   example_rsn_tool synth  <in.rsn> <out.rsn>   fault-tolerant synthesis
//   example_rsn_tool fix    <in.rsn> <out.rsn>   verified lint auto-repair
//   example_rsn_tool dot    <in.rsn>             dataflow graph as DOT
//   example_rsn_tool gen    <soc> <out.rsn>      SIB-RSN of an ITC'02 SoC
//   example_rsn_tool flow   <itc02-soc>          full flow (Table I row)
//   example_rsn_tool batch  <soc,soc,...|all>    sharded multi-SoC sweep
//   example_rsn_tool serve  [--port=N ...]       persistent analysis daemon
//
// `fix` options:
//   --verify=V         rewrite verification: sat (default) | metric | off
//   --dry-run          report the repairs, do not write <out.rsn>
// `flow` options:
//   --trace=PATH       Chrome trace-event JSON of the run (Perfetto)
//   --report=PATH      schema-versioned obs run report
//   --threads=N        fault-metric worker threads (default: hardware)
//   --bmc-check=N      BMC spot-check of the first N hardened segments
//   --repair           auto-repair fixable lint findings before synthesis
// `batch` options: the same four, where --threads=N sizes the shared pool
// (networks and fault classes share its workers, see core/batch.hpp), plus
//   --no-original      skip the original-RSN metric (hardened only)
// A batch --report=PATH writes the merged run report to PATH plus one
// per-network report per flow ("run.json" -> "run.u226.json", ...): each
// flow runs in its own obs context, so the per-network counters isolate
// that flow and the merged report's counters are their sums (DESIGN.md
// §5j).  Compare two runs with `rsn-obs diff`.
// FTRSN_TRACE / FTRSN_REPORT are honoured as defaults for every command.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "area/area.hpp"
#include "core/batch.hpp"
#include "core/flow.hpp"
#include "fault/metric.hpp"
#include "graph/dataflow.hpp"
#include "io/rsn_text.hpp"
#include "lint/fix.hpp"
#include "itc02/itc02.hpp"
#include "obs/obs.hpp"
#include "serve/server.hpp"
#include "synth/synth.hpp"
#include "util/common.hpp"

using namespace ftrsn;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: rsn_tool info|metric|dot <in.rsn>\n"
               "       rsn_tool synth <in.rsn> <out.rsn>\n"
               "       rsn_tool fix <in.rsn> <out.rsn>\n"
               "                [--verify=sat|metric|off] [--dry-run]\n"
               "       rsn_tool gen <itc02-soc> <out.rsn>\n"
               "       rsn_tool flow <itc02-soc> [--trace=PATH]\n"
               "                [--report=PATH] [--threads=N] [--bmc-check=N]\n"
               "                [--repair]\n"
               "       rsn_tool batch <soc,soc,...|all> [--trace=PATH]\n"
               "                [--report=PATH] [--threads=N] [--bmc-check=N]\n"
               "                [--no-original]\n"
               "       rsn_tool serve [--port=N] [--unix=PATH] [--threads=N]\n"
               "                [--port-file=PATH] [--cache-mb=N]\n"
               "                [--cache-entries=N] [--timeout-ms=N]\n");
  return 2;
}

int run_flow_command(int argc, char** argv) {
  FlowOptions opt;
  const obs::EnvConfig env = obs::init_from_env("rsn_tool_flow");
  opt.trace_path = env.trace_path;
  opt.report_path = env.report_path;
  const std::string soc = argv[2];
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--trace=", 0) == 0) {
      opt.trace_path = arg.substr(8);
    } else if (arg.rfind("--report=", 0) == 0) {
      opt.report_path = arg.substr(9);
    } else if (arg.rfind("--threads=", 0) == 0) {
      opt.metric_threads = std::atoi(arg.c_str() + 10);
    } else if (arg.rfind("--bmc-check=", 0) == 0) {
      opt.bmc_spotcheck = std::atoi(arg.c_str() + 12);
    } else if (arg == "--repair") {
      opt.synth.repair_input = true;
    } else {
      return usage();
    }
  }
  const FlowResult r = run_soc_flow(soc, opt);
  const auto& o = *r.original_metric;
  const auto& h = *r.hardened_metric;
  std::printf("%s: %d -> %d nodes, +%d muxes, +%d registers\n", soc.c_str(),
              static_cast<int>(r.original_stats.segments +
                               r.original_stats.muxes),
              static_cast<int>(r.hardened_stats.segments +
                               r.hardened_stats.muxes),
              r.synth_stats.added_muxes, r.synth_stats.added_registers);
  std::printf("original:  seg worst %.3f avg %.4f | bits worst %.3f avg %.4f\n",
              o.seg_worst, o.seg_avg, o.bit_worst, o.bit_avg);
  std::printf("hardened:  seg worst %.3f avg %.4f | bits worst %.3f avg %.4f\n",
              h.seg_worst, h.seg_avg, h.bit_worst, h.bit_avg);
  std::printf("overhead:  mux x%.2f bits x%.2f area x%.2f\n", r.overhead.mux,
              r.overhead.bits, r.overhead.area);
  std::printf("times:     synth %.2fs metric %.2fs\n", r.synth_seconds,
              r.metric_seconds);
  if (r.synth_stats.repaired_findings > 0)
    std::printf("repaired:  %d lint finding(s) before synthesis\n",
                r.synth_stats.repaired_findings);
  if (r.bmc_checked > 0)
    std::printf("bmc:       %d/%d spot-checked segments accessible\n",
                r.bmc_accessible, r.bmc_checked);
  if (!opt.trace_path.empty())
    std::printf("trace:     %s\n", opt.trace_path.c_str());
  if (!opt.report_path.empty())
    std::printf("report:    %s\n", opt.report_path.c_str());
  return 0;
}

int run_batch_command(int argc, char** argv) {
  BatchOptions bopt;
  FlowOptions base;
  const obs::EnvConfig env = obs::init_from_env("rsn_tool_batch");
  bopt.trace_path = env.trace_path;
  bopt.report_path = env.report_path;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--trace=", 0) == 0) {
      bopt.trace_path = arg.substr(8);
    } else if (arg.rfind("--report=", 0) == 0) {
      bopt.report_path = arg.substr(9);
    } else if (arg.rfind("--threads=", 0) == 0) {
      bopt.threads = std::atoi(arg.c_str() + 10);
    } else if (arg.rfind("--bmc-check=", 0) == 0) {
      base.bmc_spotcheck = std::atoi(arg.c_str() + 12);
    } else if (arg == "--no-original") {
      base.evaluate_original = false;
    } else {
      return usage();
    }
  }
  std::vector<std::string> socs;
  const std::string list = argv[2];
  if (list == "all") {
    for (const itc02::Soc& soc : itc02::socs()) socs.push_back(soc.name);
  } else {
    for (const std::string& name : split(list, ','))
      socs.emplace_back(trim(name));
  }
  for (const std::string& name : socs) {
    if (!itc02::find_soc(name)) {
      std::fprintf(stderr, "unknown ITC'02 SoC '%s'\n", name.c_str());
      return 1;
    }
  }

  BatchRunner runner(bopt);
  const BatchResult res = runner.run_soc_flows(socs, base);
  std::printf("%-8s %7s %7s  %-25s %-25s %9s\n", "soc", "nodes", "+nodes",
              "orig seg worst/avg", "ft seg worst/avg", "synth[s]");
  for (std::size_t i = 0; i < socs.size(); ++i) {
    const FlowResult& r = res.flows[i];
    char orig[32] = "-";
    if (r.original_metric)
      std::snprintf(orig, sizeof orig, "%.3f / %.4f",
                    r.original_metric->seg_worst, r.original_metric->seg_avg);
    char hard[32] = "-";
    if (r.hardened_metric)
      std::snprintf(hard, sizeof hard, "%.3f / %.4f",
                    r.hardened_metric->seg_worst, r.hardened_metric->seg_avg);
    std::printf("%-8s %7d %7d  %-25s %-25s %9.2f\n", socs[i].c_str(),
                static_cast<int>(r.original_stats.segments +
                                 r.original_stats.muxes),
                static_cast<int>(r.hardened_stats.segments +
                                 r.hardened_stats.muxes) -
                    static_cast<int>(r.original_stats.segments +
                                     r.original_stats.muxes),
                orig, hard, r.synth_seconds);
  }
  std::printf("batch: %zu SoCs on %d threads in %.2fs\n", socs.size(),
              res.threads, res.wall_seconds);
  if (!bopt.trace_path.empty())
    std::printf("trace:     %s\n", bopt.trace_path.c_str());
  if (!bopt.report_path.empty()) {
    std::printf("report:    %s (merged)\n", bopt.report_path.c_str());
    for (const std::string& label : res.flow_labels)
      std::printf("           %s\n",
                  per_flow_report_path(bopt.report_path, label).c_str());
  }
  return 0;
}

void print_info(const Rsn& rsn) {
  const RsnStats st = rsn.stats();
  const AreaReport area = estimate_area(rsn);
  std::printf("segments   %d\n", st.segments);
  std::printf("muxes      %d\n", st.muxes);
  std::printf("scan bits  %lld\n", st.bits);
  std::printf("levels     %d\n", st.levels);
  std::printf("ports      %d in, %d out\n", st.primary_ins, st.primary_outs);
  std::printf("nets       %lld\n", area.nets);
  std::printf("area       %.1f NAND2-eq (%lld FF, %lld latches, %lld voters)\n",
              area.area, area.shift_ffs, area.shadow_latches, area.voters);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  if (cmd == "serve")
    return serve::serve_main(std::vector<std::string>(argv + 2, argv + argc));
  if (argc < 3) return usage();
  try {
    if (cmd == "gen") {
      if (argc != 4) return usage();
      const auto soc = itc02::find_soc(argv[2]);
      if (!soc) {
        std::fprintf(stderr, "unknown ITC'02 SoC '%s'\n", argv[2]);
        return 1;
      }
      const Rsn rsn = itc02::generate_sib_rsn(*soc);
      save_rsn(rsn, argv[3]);
      print_info(rsn);
      return 0;
    }
    if (cmd == "flow") return run_flow_command(argc, argv);
    if (cmd == "batch") return run_batch_command(argc, argv);
    if (cmd == "fix") {
      if (argc < 4) return usage();
      lint::FixOptions fopt;
      bool dry = false;
      for (int i = 4; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--verify=sat")
          fopt.verify = lint::FixVerify::kSat;
        else if (arg == "--verify=metric")
          fopt.verify = lint::FixVerify::kMetric;
        else if (arg == "--verify=off")
          fopt.verify = lint::FixVerify::kOff;
        else if (arg == "--dry-run")
          dry = true;
        else
          return usage();
      }
      const Rsn broken = load_rsn(argv[2], /*validate=*/false);
      const lint::FixResult r = lint::fix_rsn(broken, fopt);
      for (const lint::AppliedFix& f : r.fixes)
        std::printf("fix[%s] %s '%s': %s\n",
                    f.status == lint::FixStatus::kApplied    ? "applied"
                    : f.status == lint::FixStatus::kRejected ? "rejected"
                                                             : "skipped",
                    f.rule.c_str(),
                    f.node < broken.num_nodes()
                        ? broken.node(f.node).name.c_str()
                        : "?",
                    f.note.c_str());
      std::printf("fix: %zu applied, %zu rejected, %d pass(es), "
                  "%zu residual finding(s)\n",
                  r.applied, r.rejected, r.passes, r.residual.size());
      if (!dry) save_rsn(r.rsn, argv[3]);
      return lint::has_errors(r.residual) ? 1 : 0;
    }
    const Rsn rsn = load_rsn(argv[2]);
    if (cmd == "info") {
      print_info(rsn);
    } else if (cmd == "metric") {
      const FaultToleranceReport r = compute_fault_tolerance(rsn);
      std::printf("faults     %zu\n", r.num_faults);
      std::printf("segments   worst %.3f  avg %.4f\n", r.seg_worst, r.seg_avg);
      std::printf("bits       worst %.3f  avg %.4f\n", r.bit_worst, r.bit_avg);
    } else if (cmd == "dot") {
      const DataflowGraph g = DataflowGraph::from_rsn(rsn);
      std::fputs(g.to_dot(rsn.node_names()).c_str(), stdout);
    } else if (cmd == "synth") {
      if (argc != 4) return usage();
      const SynthResult r = synthesize_fault_tolerant(rsn);
      save_rsn(r.rsn, argv[3]);
      const OverheadRatios o = compute_overhead(rsn, r.rsn);
      std::printf("added %d muxes, %d address registers, %d edges\n",
                  r.stats.added_muxes, r.stats.added_registers,
                  r.stats.added_edges);
      std::printf("overhead: mux x%.2f bits x%.2f nets x%.2f area x%.2f\n",
                  o.mux, o.bits, o.nets, o.area);
    } else {
      return usage();
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
