// rsn-obs — diff and rank ftrsn observability artifacts.
//
//   rsn-obs diff a.json b.json [options]   compare two run reports or two
//                                          ftrsn-bench-1 envelopes
//   rsn-obs top report.json [options]      rank span families
//
// diff options:
//   --counters=G1,G2,...   counter glob filters ('*' wildcard; default: all)
//   --counter-tol=R        relative counter tolerance (default 0 = exact)
//   --quantiles            also compare histogram p50/p90/p99
//   --histograms=G1,...    histogram glob filters for --quantiles
//   --quantile-tol=R       relative quantile tolerance (default 0.25)
//   --wall[=R]             also compare wall_seconds (default tol 0.5)
//   --json                 print the machine verdict instead of the table
//
// top options:
//   --by=wall|count|p99    sort key (default wall)
//   --limit=N              rows to print (default 20)
//
// Exit status: 0 = match (diff) / ok (top), 1 = mismatch, 2 = usage or
// input error.  CI uses `rsn-obs diff` with counter-exact gates as the
// hardware-independent regression check (tools/ci.sh).
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "obs/diff.hpp"

namespace {

using ftrsn::obs::DiffOptions;
using ftrsn::obs::TopOptions;

int usage() {
  std::fprintf(
      stderr,
      "usage: rsn-obs diff <a.json> <b.json> [--counters=G1,G2,...]\n"
      "               [--counter-tol=R] [--quantiles] [--histograms=G1,...]\n"
      "               [--quantile-tol=R] [--wall[=R]] [--json]\n"
      "       rsn-obs top <report.json> [--by=wall|count|p99] [--limit=N]\n");
  return 2;
}

std::vector<std::string> split_list(std::string_view s) {
  std::vector<std::string> out;
  while (!s.empty()) {
    const std::size_t comma = s.find(',');
    const std::string_view item = s.substr(0, comma);
    if (!item.empty()) out.emplace_back(item);
    if (comma == std::string_view::npos) break;
    s.remove_prefix(comma + 1);
  }
  return out;
}

bool parse_double(std::string_view s, double& out) {
  try {
    std::size_t used = 0;
    out = std::stod(std::string(s), &used);
    return used == s.size();
  } catch (...) {
    return false;
  }
}

int run_diff(const std::vector<std::string>& args) {
  DiffOptions options;
  bool json_verdict = false;
  std::vector<std::string> paths;
  for (const std::string& arg : args) {
    const std::string_view a = arg;
    if (a.rfind("--counters=", 0) == 0) {
      options.counter_filters = split_list(a.substr(11));
    } else if (a.rfind("--counter-tol=", 0) == 0) {
      if (!parse_double(a.substr(14), options.counter_rel_tol)) return usage();
    } else if (a == "--quantiles") {
      options.compare_quantiles = true;
    } else if (a.rfind("--histograms=", 0) == 0) {
      options.histogram_filters = split_list(a.substr(13));
      options.compare_quantiles = true;
    } else if (a.rfind("--quantile-tol=", 0) == 0) {
      if (!parse_double(a.substr(15), options.quantile_rel_tol))
        return usage();
      options.compare_quantiles = true;
    } else if (a == "--wall") {
      options.compare_wall = true;
    } else if (a.rfind("--wall=", 0) == 0) {
      if (!parse_double(a.substr(7), options.wall_rel_tol)) return usage();
      options.compare_wall = true;
    } else if (a == "--json") {
      json_verdict = true;
    } else if (a.rfind("--", 0) == 0) {
      return usage();
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.size() != 2) return usage();

  std::string error;
  const auto doc_a = ftrsn::obs::load_run_doc(paths[0], &error);
  if (!doc_a) {
    std::fprintf(stderr, "rsn-obs: %s\n", error.c_str());
    return 2;
  }
  const auto doc_b = ftrsn::obs::load_run_doc(paths[1], &error);
  if (!doc_b) {
    std::fprintf(stderr, "rsn-obs: %s\n", error.c_str());
    return 2;
  }
  const auto result = ftrsn::obs::diff_docs(*doc_a, *doc_b, options);
  if (json_verdict)
    std::fputs(result.verdict_json(*doc_a, *doc_b).c_str(), stdout);
  else
    std::fputs(result.table(*doc_a, *doc_b).c_str(), stdout);
  return result.ok() ? 0 : 1;
}

int run_top(const std::vector<std::string>& args) {
  TopOptions options;
  std::vector<std::string> paths;
  for (const std::string& arg : args) {
    const std::string_view a = arg;
    if (a == "--by=wall") {
      options.by = TopOptions::By::kWall;
    } else if (a == "--by=count") {
      options.by = TopOptions::By::kCount;
    } else if (a == "--by=p99") {
      options.by = TopOptions::By::kP99;
    } else if (a.rfind("--limit=", 0) == 0) {
      char* end = nullptr;
      const long limit = std::strtol(arg.c_str() + 8, &end, 10);
      if (end == nullptr || *end != '\0' || limit <= 0) return usage();
      options.limit = static_cast<std::size_t>(limit);
    } else if (a.rfind("--", 0) == 0) {
      return usage();
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.size() != 1) return usage();

  std::string error;
  const auto doc = ftrsn::obs::load_run_doc(paths[0], &error);
  if (!doc) {
    std::fprintf(stderr, "rsn-obs: %s\n", error.c_str());
    return 2;
  }
  std::fputs(ftrsn::obs::top_table(*doc, options).c_str(), stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string_view command = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  if (command == "diff") return run_diff(args);
  if (command == "top") return run_top(args);
  return usage();
}
