// Persistent analysis daemon: parse / lint / synth / metric / access over
// JSONL, with the content-addressed result cache and single-flight request
// coalescing of serve/ (DESIGN.md §5k).
//
//   example_rsn_serve [--port=N] [--host=H] [--unix=PATH]
//                     [--port-file=PATH] [--threads=N] [--cache-mb=N]
//                     [--cache-entries=N] [--timeout-ms=N]
//
// Runs until a client sends {"op":"shutdown"}.  tools/serve_client.py is a
// minimal scripted client; `rsn_tool serve ...` is the same driver.
#include <string>
#include <vector>

#include "serve/server.hpp"

int main(int argc, char** argv) {
  return ftrsn::serve::serve_main(
      std::vector<std::string>(argv + 1, argv + argc));
}
